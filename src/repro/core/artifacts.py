"""Content-addressed artifact store for the compute-once pipeline.

The paper's evaluation measures the *same* anonymized datasets under
many lenses (Figs. 3-11, Table 2); production telemetry pipelines solve
the analogous problem with staged, content-addressed datasets.  This
module provides the storage half of that discipline:

* :func:`canonical_key` -- a stable hash of a stage name plus its
  parameter dict (canonical JSON, key-order independent);
* :func:`dataset_digest` -- a content hash of a
  :class:`~repro.core.dataset.FingerprintDataset`, so derived stages
  (GLOVE runs, pairwise matrices) are keyed by *what the data is*, not
  by how it was obtained — a CSV-loaded dataset and a synthesized one
  with identical records share every downstream artifact;
* :func:`source_digest` -- a hash of the source files a stage's output
  depends on, folded into every key so editing the algorithms
  invalidates exactly the artifacts they produce (see DESIGN.md D6);
* :class:`ArtifactStore` -- the two-layer store: a bounded in-process
  memo (zero-copy hits within a run) over an on-disk LRU-bounded pickle
  store (hits across runs and processes).

Environment knobs (all read at store construction):

* ``REPRO_ARTIFACT_DIR`` -- on-disk root (default
  ``$XDG_CACHE_HOME/repro`` or ``~/.cache/repro``);
* ``REPRO_CACHE=0`` -- disable the disk layer entirely;
* ``REPRO_CACHE_MAX_MB`` -- LRU bound on the total on-disk size
  (default 512);
* ``REPRO_CACHE_MAX_ARTIFACT_MB`` -- artifacts serializing above this
  are memo-only, never written to disk (default 64).

Disk artifacts are pickles segregated by interpreter version
(``v1/cpython-3.11/<stage>/<key>.pkl``), written atomically; any read
failure (corruption, version skew) degrades to a cache miss and the
value is recomputed.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import sys
import tempfile
from collections import OrderedDict
from dataclasses import is_dataclass, asdict
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Store layout version: bump to orphan every existing on-disk artifact
#: when the serialization format (not the content) changes.
STORE_VERSION = "v1"

_MISS = object()


def _jsonable(value: Any) -> Any:
    """Reduce a key parameter to canonical JSON-compatible primitives."""
    if is_dataclass(value) and not isinstance(value, type):
        return {"__dataclass__": type(value).__name__, **_jsonable(asdict(value))}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        # repr round-trips float64 exactly; avoids 0.1+0.2 style drift
        # from JSON re-parsing on the read side (keys are write-only).
        return repr(value)
    raise TypeError(
        f"artifact key parameters must be JSON-like primitives or "
        f"dataclasses, got {type(value).__name__}"
    )


def canonical_key(stage: str, params: Dict[str, Any]) -> str:
    """Hex digest identifying one artifact: stage + canonical params.

    Key-order independent (canonical JSON with sorted keys); two
    parameter dicts differing in any value — including nested dataclass
    fields — produce different keys.
    """
    payload = json.dumps(
        {"stage": stage, "params": _jsonable(params)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def dataset_digest(dataset) -> str:
    """Content hash of a fingerprint dataset (order-sensitive).

    Covers every record field that downstream stages can observe: uid,
    group count, member list and the raw float64 sample array.  The
    dataset *name* is deliberately excluded — it is presentation
    metadata and two identically-recorded datasets must share their
    derived artifacts.
    """
    h = hashlib.sha256()
    for fp in dataset:
        h.update(fp.uid.encode("utf-8"))
        h.update(b"\x00")
        h.update(str(fp.count).encode("ascii"))
        for member in fp.members:
            h.update(b"\x00")
            h.update(member.encode("utf-8"))
        h.update(b"\x01")
        h.update(str(fp.data.shape).encode("ascii"))
        h.update(fp.data.tobytes())
    return h.hexdigest()


_SOURCE_DIGESTS: Dict[Tuple[str, ...], str] = {}


def source_digest(*modules: str) -> str:
    """Hash of the ``.py`` sources of the named modules/packages.

    Folded into artifact keys so a cached value is only ever served
    while the code that produced it is unchanged (DESIGN.md D6).  A
    package name digests every ``*.py`` beneath it; extra plain file
    paths may be passed directly.  Memoized per process (sources cannot
    change under a running interpreter).
    """
    cache_key = tuple(modules)
    cached = _SOURCE_DIGESTS.get(cache_key)
    if cached is not None:
        return cached
    files: List[Path] = []
    for name in modules:
        as_path = Path(name)
        if as_path.suffix == ".py" and as_path.exists():
            files.append(as_path)
            continue
        import importlib.util

        try:
            spec = importlib.util.find_spec(name)
        except ModuleNotFoundError:
            spec = None
        if spec is None or spec.origin is None:
            raise ValueError(f"cannot locate sources of {name!r}")
        origin = Path(spec.origin)
        if origin.name == "__init__.py":
            files.extend(sorted(origin.parent.rglob("*.py")))
        else:
            files.append(origin)
    h = hashlib.sha256()
    for path in sorted(set(files)):
        h.update(path.name.encode("utf-8"))
        h.update(b"\x00")
        h.update(path.read_bytes())
        h.update(b"\x01")
    digest = h.hexdigest()
    _SOURCE_DIGESTS[cache_key] = digest
    return digest


def default_artifact_dir() -> Path:
    """Resolve the on-disk root from the environment."""
    override = os.environ.get("REPRO_ARTIFACT_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


class ArtifactStore:
    """Two-layer content-addressed store: in-process memo over disk LRU.

    Parameters
    ----------
    root:
        On-disk root directory; ``None`` disables the disk layer (the
        store becomes memo-only).
    max_bytes:
        LRU bound on the total on-disk artifact size; least-recently-
        *used* files (reads refresh the clock) are evicted first.
    max_artifact_bytes:
        Values serializing above this stay memo-only — e.g. the
        pairwise matrix of a 10k-fingerprint ``glove measure`` run is
        ~800 MB and must not wash the cache out.
    memo_entries:
        Bound on the in-process memo (plain LRU on entry count).
    """

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        max_bytes: int = 512 * 1024 * 1024,
        max_artifact_bytes: int = 64 * 1024 * 1024,
        memo_entries: int = 64,
    ):
        self.root = Path(root) if root is not None else None
        self.max_bytes = int(max_bytes)
        self.max_artifact_bytes = int(max_artifact_bytes)
        self.memo_entries = int(memo_entries)
        self._memo: "OrderedDict[str, Any]" = OrderedDict()
        # Running estimate of the disk layer's size: one directory scan
        # on the first write, then incremental accounting, with a full
        # rescan only when the estimate crosses the bound — keeps puts
        # O(1) instead of O(store files) (concurrent writers may make
        # the estimate drift; eviction re-measures before acting).
        self._approx_bytes: Optional[int] = None

    @classmethod
    def from_env(cls, root: Optional[os.PathLike] = None, enabled: Optional[bool] = None) -> "ArtifactStore":
        """Build a store honouring the ``REPRO_CACHE*`` environment.

        ``root``/``enabled`` override the environment (CLI flags use
        them); with the disk layer gated off the store is memo-only.
        """
        if enabled is None:
            enabled = os.environ.get("REPRO_CACHE", "1") != "0"
        max_mb = float(os.environ.get("REPRO_CACHE_MAX_MB", "512"))
        max_artifact_mb = float(os.environ.get("REPRO_CACHE_MAX_ARTIFACT_MB", "64"))
        return cls(
            root=(Path(root) if root is not None else default_artifact_dir()) if enabled else None,
            max_bytes=int(max_mb * 1024 * 1024),
            max_artifact_bytes=int(max_artifact_mb * 1024 * 1024),
        )

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def _stage_dir(self, stage: str) -> Path:
        # Segregate by interpreter *and* numpy version: numpy upgrades
        # may change bit-level results (RNG streams, reduction order),
        # and the cached bytes must always match what --no-cache would
        # produce on the current stack.
        import numpy

        runtime = (
            f"cpython-{sys.version_info.major}.{sys.version_info.minor}"
            f"-numpy-{numpy.__version__}"
        )
        return self.root / STORE_VERSION / runtime / stage

    def _path(self, stage: str, key: str) -> Path:
        return self._stage_dir(stage) / f"{key}.pkl"

    @property
    def disk_enabled(self) -> bool:
        """Whether the persistent layer is active."""
        return self.root is not None

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(self, stage: str, key: str) -> Any:
        """The stored value, or the :data:`MISS` sentinel."""
        memo_key = f"{stage}/{key}"
        if memo_key in self._memo:
            self._memo.move_to_end(memo_key)
            return self._memo[memo_key]
        if self.root is None:
            return _MISS
        path = self._path(stage, key)
        try:
            with open(path, "rb") as f:
                value = pickle.load(f)
        except Exception:
            # Any unreadable artifact — truncated stream, bit rot,
            # version skew in a pickled class — is a miss, never an
            # error (DESIGN.md D6); the value is simply recomputed.
            return _MISS
        try:
            os.utime(path)  # refresh the LRU clock
        except OSError:
            pass
        self._memoize(memo_key, value)
        return value

    def put(self, stage: str, key: str, value: Any) -> None:
        """Store a value in the memo and (size permitting) on disk."""
        self._memoize(f"{stage}/{key}", value)
        if self.root is None:
            return
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return  # unpicklable values stay memo-only
        if len(payload) > self.max_artifact_bytes:
            return
        path = self._path(stage, key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as f:
                    f.write(payload)
                os.replace(tmp, path)  # atomic under concurrent writers
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
            if self._approx_bytes is None:
                self._approx_bytes = self.disk_bytes()
            else:
                self._approx_bytes += len(payload)
            if self._approx_bytes > self.max_bytes:
                self._evict()
        except OSError:
            return  # a read-only or full disk degrades to memo-only

    def fetch(self, stage: str, key: str, compute: Callable[[], Any]) -> Tuple[Any, str]:
        """Value for ``key``, computing on miss.

        Returns ``(value, origin)`` with origin one of ``"memo"``,
        ``"disk"`` or ``"computed"``.
        """
        memo_key = f"{stage}/{key}"
        if memo_key in self._memo:
            self._memo.move_to_end(memo_key)
            return self._memo[memo_key], "memo"
        value = self.get(stage, key)
        if value is not _MISS:
            return value, "disk"
        value = compute()
        self.put(stage, key, value)
        return value, "computed"

    def contains(self, stage: str, key: str) -> bool:
        """Whether the key is resolvable without computing."""
        return self.get(stage, key) is not _MISS

    # ------------------------------------------------------------------
    # Bounds
    # ------------------------------------------------------------------
    def _memoize(self, memo_key: str, value: Any) -> None:
        self._memo[memo_key] = value
        self._memo.move_to_end(memo_key)
        while len(self._memo) > self.memo_entries:
            self._memo.popitem(last=False)

    def _artifact_files(self) -> List[Path]:
        if self.root is None or not self.root.exists():
            return []
        return [p for p in self.root.rglob("*.pkl") if p.is_file()]

    def disk_bytes(self) -> int:
        """Total bytes currently held by the disk layer."""
        return sum(p.stat().st_size for p in self._artifact_files())

    def _evict(self) -> None:
        """Drop least-recently-used artifacts until within ``max_bytes``."""
        files = self._artifact_files()
        sized = []
        total = 0
        for p in files:
            try:
                st = p.stat()
            except OSError:
                continue
            sized.append((st.st_mtime, st.st_size, p))
            total += st.st_size
        if total > self.max_bytes:
            for _, size, p in sorted(sized):
                try:
                    p.unlink()
                except OSError:
                    continue
                total -= size
                if total <= self.max_bytes:
                    break
        self._approx_bytes = total

    def clear_memo(self) -> None:
        """Drop the in-process memo layer (disk artifacts survive)."""
        self._memo.clear()


#: Public alias for the miss sentinel (``store.get(...) is MISS``).
MISS = _MISS
