"""Content-addressed artifact store for the compute-once pipeline.

The paper's evaluation measures the *same* anonymized datasets under
many lenses (Figs. 3-11, Table 2); production telemetry pipelines solve
the analogous problem with staged, content-addressed datasets.  This
module provides the storage half of that discipline:

* :func:`canonical_key` -- a stable hash of a stage name plus its
  parameter dict (canonical JSON, key-order independent);
* :func:`dataset_digest` -- a content hash of a
  :class:`~repro.core.dataset.FingerprintDataset`, so derived stages
  (GLOVE runs, pairwise matrices) are keyed by *what the data is*, not
  by how it was obtained — a CSV-loaded dataset and a synthesized one
  with identical records share every downstream artifact;
* :func:`source_digest` -- a hash of the source files a stage's output
  depends on, folded into every key so editing the algorithms
  invalidates exactly the artifacts they produce (see DESIGN.md D6);
* :class:`ArtifactStore` -- the two-layer store: a bounded in-process
  memo (zero-copy hits within a run) over a pluggable persistent
  backend (hits across runs and processes, DESIGN.md D10).

The persistent layer is an :class:`~repro.core.artifact_backends.
ArtifactBackend` — local-disk LRU by default, SQLite or Redis by
selection — and every cold ``fetch()`` runs under the backend's
**single-flight** lock: N concurrent requests for the same missing
key, across threads or processes, compute the value exactly once while
the others block and are then served from the store.  A stale-lock
timeout bounds the wait, so a crashed owner costs duplicate work, not
a wedged pipeline.

Environment knobs (all read at store construction; malformed values
degrade to the documented defaults with a warning, never an error):

* ``REPRO_ARTIFACT_DIR`` -- persistent root (default
  ``$XDG_CACHE_HOME/repro`` or ``~/.cache/repro``);
* ``REPRO_ARTIFACT_BACKEND`` -- persistence backend, ``disk``
  (default), ``sqlite`` or ``redis``;
* ``REPRO_CACHE=0`` -- disable the persistent layer entirely;
* ``REPRO_CACHE_MAX_MB`` -- LRU bound on the total stored size
  (default 512);
* ``REPRO_CACHE_MAX_ARTIFACT_MB`` -- artifacts serializing above this
  are memo-only, never persisted (default 64);
* ``REPRO_CACHE_STALE_LOCK_S`` -- single-flight stale-lock timeout
  (default 300).

Artifacts are pickles segregated by interpreter and numpy version;
any read failure (corruption, version skew, an unreachable backend)
degrades to a cache miss and the value is recomputed.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import sys
from collections import OrderedDict
from dataclasses import is_dataclass, asdict
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.artifact_backends import (
    DEFAULT_STALE_LOCK_S,
    STORE_VERSION,
    ArtifactBackend,
    DiskArtifactBackend,
    available_artifact_backends,
    create_artifact_backend,
)
from repro.core.config import env_float

__all__ = [
    "ArtifactStore",
    "MISS",
    "STORE_VERSION",
    "available_artifact_backends",
    "canonical_key",
    "dataset_digest",
    "default_artifact_dir",
    "source_digest",
]

_MISS = object()


def _jsonable(value: Any) -> Any:
    """Reduce a key parameter to canonical JSON-compatible primitives."""
    if is_dataclass(value) and not isinstance(value, type):
        return {"__dataclass__": type(value).__name__, **_jsonable(asdict(value))}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        # repr round-trips float64 exactly; avoids 0.1+0.2 style drift
        # from JSON re-parsing on the read side (keys are write-only).
        return repr(value)
    raise TypeError(
        f"artifact key parameters must be JSON-like primitives or "
        f"dataclasses, got {type(value).__name__}"
    )


def canonical_key(stage: str, params: Dict[str, Any]) -> str:
    """Hex digest identifying one artifact: stage + canonical params.

    Key-order independent (canonical JSON with sorted keys); two
    parameter dicts differing in any value — including nested dataclass
    fields — produce different keys.
    """
    payload = json.dumps(
        {"stage": stage, "params": _jsonable(params)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def dataset_digest(dataset) -> str:
    """Content hash of a fingerprint dataset (order-sensitive).

    Covers every record field that downstream stages can observe: uid,
    group count, member list and the raw float64 sample array.  The
    dataset *name* is deliberately excluded — it is presentation
    metadata and two identically-recorded datasets must share their
    derived artifacts.
    """
    h = hashlib.sha256()
    for fp in dataset:
        h.update(fp.uid.encode("utf-8"))
        h.update(b"\x00")
        h.update(str(fp.count).encode("ascii"))
        for member in fp.members:
            h.update(b"\x00")
            h.update(member.encode("utf-8"))
        h.update(b"\x01")
        h.update(str(fp.data.shape).encode("ascii"))
        h.update(fp.data.tobytes())
    return h.hexdigest()


_SOURCE_DIGESTS: Dict[Tuple[str, ...], str] = {}


def source_digest(*modules: str) -> str:
    """Hash of the ``.py`` sources of the named modules/packages.

    Folded into artifact keys so a cached value is only ever served
    while the code that produced it is unchanged (DESIGN.md D6).  A
    package name digests every ``*.py`` beneath it; extra plain file
    paths may be passed directly.  Files are labelled by their
    *package-relative* path (not the basename): moving a module
    between subpackages changes the digest even when its content does
    not, so a refactor can never serve stale artifacts.  Memoized per
    process (sources cannot change under a running interpreter).
    """
    cache_key = tuple(modules)
    cached = _SOURCE_DIGESTS.get(cache_key)
    if cached is not None:
        return cached
    entries: Dict[Path, str] = {}
    for name in modules:
        as_path = Path(name)
        if as_path.suffix == ".py" and as_path.exists():
            entries.setdefault(as_path, as_path.name)
            continue
        import importlib.util

        try:
            spec = importlib.util.find_spec(name)
        except ModuleNotFoundError:
            spec = None
        if spec is None or spec.origin is None:
            raise ValueError(f"cannot locate sources of {name!r}")
        origin = Path(spec.origin)
        if origin.name == "__init__.py":
            pkg_root = origin.parent
            for path in sorted(pkg_root.rglob("*.py")):
                rel = path.relative_to(pkg_root).as_posix()
                entries.setdefault(path, f"{name}/{rel}")
        else:
            entries.setdefault(origin, name)
    h = hashlib.sha256()
    for path, label in sorted(entries.items(), key=lambda kv: (kv[1], str(kv[0]))):
        h.update(label.encode("utf-8"))
        h.update(b"\x00")
        h.update(path.read_bytes())
        h.update(b"\x01")
    digest = h.hexdigest()
    _SOURCE_DIGESTS[cache_key] = digest
    return digest


def default_artifact_dir() -> Path:
    """Resolve the persistent root from the environment."""
    override = os.environ.get("REPRO_ARTIFACT_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


class ArtifactStore:
    """Two-layer content-addressed store: in-process memo over a backend.

    Parameters
    ----------
    root:
        Persistent root directory; ``None`` disables the persistent
        layer (the store becomes memo-only).
    max_bytes:
        LRU bound on the total persisted artifact size; least-
        recently-*used* artifacts (reads refresh the clock) are
        evicted first.
    max_artifact_bytes:
        Values serializing above this stay memo-only — e.g. the
        pairwise matrix of a 10k-fingerprint ``glove measure`` run is
        ~800 MB and must not wash the cache out.
    memo_entries:
        Bound on the in-process memo (plain LRU on entry count).
    backend:
        Name of the persistence backend (``disk``, ``sqlite`` or
        ``redis``; see :mod:`repro.core.artifact_backends`).
    stale_lock_timeout:
        Upper bound, in seconds, that a cold ``fetch()`` waits on
        another worker's single-flight lock before computing anyway.
        Computations longer than this may be duplicated (safe, just
        wasted work); it exists so a crashed owner never wedges the
        pipeline.
    """

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        max_bytes: int = 512 * 1024 * 1024,
        max_artifact_bytes: int = 64 * 1024 * 1024,
        memo_entries: int = 64,
        backend: str = "disk",
        stale_lock_timeout: float = DEFAULT_STALE_LOCK_S,
    ):
        self.root = Path(root) if root is not None else None
        self.max_bytes = int(max_bytes)
        self.max_artifact_bytes = int(max_artifact_bytes)
        self.memo_entries = int(memo_entries)
        self.stale_lock_timeout = float(stale_lock_timeout)
        self._memo: "OrderedDict[str, Any]" = OrderedDict()
        self._backend: Optional[ArtifactBackend] = (
            create_artifact_backend(
                backend,
                root=self.root,
                max_bytes=self.max_bytes,
                stale_lock_timeout=self.stale_lock_timeout,
            )
            if self.root is not None
            else None
        )

    @classmethod
    def from_env(
        cls,
        root: Optional[os.PathLike] = None,
        enabled: Optional[bool] = None,
        backend: Optional[str] = None,
    ) -> "ArtifactStore":
        """Build a store honouring the ``REPRO_CACHE*`` environment.

        ``root``/``enabled``/``backend`` override the environment (CLI
        flags use them); with the persistent layer gated off the store
        is memo-only.  Env knobs degrade, never error (DESIGN.md D6):
        malformed sizes fall back to the defaults with a warning, and
        an unknown ``REPRO_ARTIFACT_BACKEND`` falls back to ``disk``.
        """
        if enabled is None:
            enabled = os.environ.get("REPRO_CACHE", "1") != "0"
        max_mb = env_float("REPRO_CACHE_MAX_MB", 512.0)
        max_artifact_mb = env_float("REPRO_CACHE_MAX_ARTIFACT_MB", 64.0)
        stale_s = env_float("REPRO_CACHE_STALE_LOCK_S", DEFAULT_STALE_LOCK_S)
        if backend is None:
            backend = os.environ.get("REPRO_ARTIFACT_BACKEND", "disk")
            if backend not in available_artifact_backends():
                print(
                    f"warning: ignoring unknown REPRO_ARTIFACT_BACKEND="
                    f"{backend!r}; using 'disk' "
                    f"(available: {', '.join(available_artifact_backends())})",
                    file=sys.stderr,
                )
                backend = "disk"
        return cls(
            root=(Path(root) if root is not None else default_artifact_dir()) if enabled else None,
            max_bytes=int(max_mb * 1024 * 1024),
            max_artifact_bytes=int(max_artifact_mb * 1024 * 1024),
            backend=backend,
            stale_lock_timeout=stale_s,
        )

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    @property
    def backend(self) -> Optional[ArtifactBackend]:
        """The persistent backend, or ``None`` for a memo-only store."""
        return self._backend

    def _path(self, stage: str, key: str) -> Path:
        """On-disk location of one artifact (``disk`` backend only)."""
        if not isinstance(self._backend, DiskArtifactBackend):
            raise TypeError("artifact paths exist only on the 'disk' backend")
        return self._backend.path(stage, key)

    @property
    def disk_enabled(self) -> bool:
        """Whether the persistent layer is active."""
        return self._backend is not None

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(self, stage: str, key: str) -> Any:
        """The stored value, or the :data:`MISS` sentinel."""
        memo_key = f"{stage}/{key}"
        if memo_key in self._memo:
            self._memo.move_to_end(memo_key)
            return self._memo[memo_key]
        if self._backend is None:
            return _MISS
        try:
            payload = self._backend.get(stage, key)
        except Exception:
            payload = None
        if payload is None:
            return _MISS
        try:
            value = pickle.loads(payload)
        except Exception:
            # Any unreadable artifact — truncated stream, bit rot,
            # version skew in a pickled class — is a miss, never an
            # error (DESIGN.md D6); the value is simply recomputed.
            return _MISS
        self._memoize(memo_key, value)
        return value

    def put(self, stage: str, key: str, value: Any) -> None:
        """Store a value in the memo and (size permitting) the backend."""
        self._memoize(f"{stage}/{key}", value)
        if self._backend is None:
            return
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return  # unpicklable values stay memo-only
        if len(payload) > self.max_artifact_bytes:
            return
        try:
            self._backend.put(stage, key, payload)
        except Exception:
            return  # a failing backend degrades to memo-only

    def fetch(self, stage: str, key: str, compute: Callable[[], Any]) -> Tuple[Any, str]:
        """Value for ``key``, computing on miss — under single flight.

        Returns ``(value, origin)`` with origin one of ``"memo"``,
        ``"disk"`` or ``"computed"``.  On a cold key the compute runs
        inside the backend's single-flight lock: concurrent callers
        (threads or processes) serialize, the first computes and
        stores, the rest re-check the store on admission and are
        served the stored bytes (origin ``"disk"``).  If the stored
        value cannot be persisted (oversized, unpicklable, write
        failure), waiters compute their own copy — one at a time.
        """
        memo_key = f"{stage}/{key}"
        if memo_key in self._memo:
            self._memo.move_to_end(memo_key)
            return self._memo[memo_key], "memo"
        value = self.get(stage, key)
        if value is not _MISS:
            return value, "disk"
        if self._backend is None:
            value = compute()
            self.put(stage, key, value)
            return value, "computed"
        with self._backend.single_flight(stage, key):
            # The previous flight owner may have stored it while we
            # waited; re-check before paying for the computation.
            value = self.get(stage, key)
            if value is not _MISS:
                return value, "disk"
            value = compute()
            self.put(stage, key, value)
            return value, "computed"

    def contains(self, stage: str, key: str) -> bool:
        """Whether the key is resolvable without computing."""
        return self.get(stage, key) is not _MISS

    # ------------------------------------------------------------------
    # Bounds
    # ------------------------------------------------------------------
    def _memoize(self, memo_key: str, value: Any) -> None:
        self._memo[memo_key] = value
        self._memo.move_to_end(memo_key)
        while len(self._memo) > self.memo_entries:
            self._memo.popitem(last=False)

    def disk_bytes(self) -> int:
        """Total bytes currently held by the persistent layer."""
        if self._backend is None:
            return 0
        return self._backend.stats().total_bytes

    def evict(self) -> None:
        """Enforce the size bound now (normally automatic on put)."""
        if self._backend is not None:
            self._backend.evict()

    def clear_memo(self) -> None:
        """Drop the in-process memo layer (persisted artifacts survive)."""
        self._memo.clear()


#: Public alias for the miss sentinel (``store.get(...) is MISS``).
MISS = _MISS
