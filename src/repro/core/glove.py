"""The GLOVE k-anonymization algorithm (paper Alg. 1, Section 6).

GLOVE greedily merges the two not-yet-anonymized fingerprints at
minimum fingerprint stretch effort (Eq. 10) until every fingerprint
hides at least ``k`` subscribers:

1. compute the stretch effort between all fingerprint pairs;
2. repeatedly pick the closest pair, merge it through specialized
   generalization (Eq. 12-13 with two-stage matching), and re-insert the
   merged fingerprint, recomputing its efforts to the remaining ones;
3. a merged fingerprint reaching ``count >= k`` is final and leaves the
   working set.

The loop of Alg. 1 ends when fewer than two non-anonymized fingerprints
remain.  With unfavourable group-size arithmetic a single non-anonymous
fingerprint can be left over; to honour the paper's "k-anonymity of all
fingerprints by design" guarantee, the leftover is merged into its
nearest *finished* group (documented design decision, see DESIGN.md).

Complexity is O(|M|^2 n-bar^2) as in the paper's Section 6.3; the bulk
Eq. 10 evaluations run on the vectorized kernels of
:mod:`repro.core.pairwise` (the reproduction's stand-in for the paper's
CUDA implementation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import GloveConfig, StretchConfig, SuppressionConfig
from repro.core.dataset import FingerprintDataset
from repro.core.fingerprint import Fingerprint
from repro.core.merge import merge_fingerprints
from repro.core.pairwise import one_vs_all
from repro.core.reshape import reshape_fingerprint
from repro.core.sample import NCOLS
from repro.core.suppression import SuppressionStats, suppress_dataset


@dataclass
class GloveStats:
    """Bookkeeping of one GLOVE run.

    Attributes
    ----------
    n_input_fingerprints:
        Fingerprints in the input dataset.
    n_output_fingerprints:
        Groups in the anonymized output.
    n_merges:
        Pairwise merge operations performed.
    leftover_merged:
        Whether a final non-anonymous leftover had to be folded into an
        already-finished group.
    suppression:
        Sample-suppression statistics (zero counts when disabled).
    """

    n_input_fingerprints: int = 0
    n_output_fingerprints: int = 0
    n_merges: int = 0
    leftover_merged: bool = False
    suppression: Optional[SuppressionStats] = None


@dataclass(frozen=True)
class GloveResult:
    """Anonymized dataset plus run statistics."""

    dataset: FingerprintDataset
    stats: GloveStats
    config: GloveConfig


class _WorkingSet:
    """Growable padded tensor of live fingerprints.

    Duck-types the :class:`repro.core.pairwise.PaddedFingerprints`
    interface (``data``, ``mask``, ``lengths``, ``counts``) so the
    one-vs-all kernel can be reused while slots are added and retired.
    Merged fingerprints never have more samples than the shorter parent,
    so the sample capacity ``m_max`` is fixed by the input dataset.
    """

    def __init__(self, fingerprints: List[Fingerprint]):
        n = len(fingerprints)
        capacity = 2 * n  # n inputs + at most n-1 merge products
        m_max = max(fp.m for fp in fingerprints)
        self.data = np.zeros((capacity, m_max, NCOLS), dtype=np.float64)
        self.mask = np.zeros((capacity, m_max), dtype=bool)
        self.lengths = np.zeros(capacity, dtype=np.int64)
        self.counts = np.zeros(capacity, dtype=np.int64)
        self.fps: List[Optional[Fingerprint]] = [None] * capacity
        self.size = 0
        for fp in fingerprints:
            self.append(fp)

    def append(self, fp: Fingerprint) -> int:
        """Store a fingerprint in the next free slot; returns the slot id."""
        slot = self.size
        if fp.m > self.data.shape[1]:
            raise ValueError(
                f"fingerprint {fp.uid!r} has {fp.m} samples, exceeding capacity "
                f"{self.data.shape[1]}"
            )
        self.data[slot, : fp.m] = fp.data
        self.mask[slot, : fp.m] = True
        self.lengths[slot] = fp.m
        self.counts[slot] = fp.count
        self.fps[slot] = fp
        self.size += 1
        return slot

    def __len__(self) -> int:
        return self.size


def glove(
    dataset: FingerprintDataset,
    config: GloveConfig = GloveConfig(),
    chunk: int = 256,
) -> GloveResult:
    """k-anonymize a fingerprint dataset with GLOVE.

    Parameters
    ----------
    dataset:
        Input movement micro-data; every fingerprint must be non-empty
        and represent a single subscriber (``count == 1``) or an
        already-formed group.
    config:
        Anonymity level, stretch metric, suppression, reshaping.
    chunk:
        Fingerprints per broadcast chunk in the bulk kernels.

    Returns
    -------
    :class:`GloveResult` whose dataset contains one fingerprint per
    group, each hiding at least ``config.k`` subscribers.
    """
    fps = list(dataset)
    k = config.k
    n = len(fps)
    total_users = sum(fp.count for fp in fps)
    if total_users < k:
        raise ValueError(f"dataset hides {total_users} users in total, cannot reach k={k}")
    if any(fp.m == 0 for fp in fps):
        raise ValueError("input contains empty fingerprints; screen the dataset first")

    stats = GloveStats(n_input_fingerprints=n)
    work = _WorkingSet(fps)
    capacity = 2 * n

    # S[i, j] = fingerprint stretch effort between live slots i and j.
    stretch = np.full((capacity, capacity), np.inf, dtype=np.float64)
    pending = np.zeros(capacity, dtype=bool)  # live and count < k
    for slot in range(n):
        pending[slot] = work.counts[slot] < k
    finished: List[int] = [slot for slot in range(n) if not pending[slot]]

    cfg = config.stretch
    pending_idx = np.flatnonzero(pending)
    for pos, i in enumerate(pending_idx[:-1]):
        targets = pending_idx[pos + 1 :]
        vals = one_vs_all(work.fps[i].data, work.fps[i].count, work, cfg, targets, chunk)
        stretch[i, targets] = vals
        stretch[targets, i] = vals

    # Nearest pending neighbour per pending slot (value + index).
    best_val = np.full(capacity, np.inf)
    best_idx = np.full(capacity, -1, dtype=np.int64)

    def _refresh_best(slot: int) -> None:
        live = pending.copy()
        live[slot] = False
        if not live.any():
            best_val[slot] = np.inf
            best_idx[slot] = -1
            return
        row = np.where(live, stretch[slot], np.inf)
        j = int(row.argmin())
        best_val[slot] = row[j]
        best_idx[slot] = j

    for i in np.flatnonzero(pending):
        _refresh_best(int(i))

    def _merge_pair(i: int, j: int) -> Fingerprint:
        merged = merge_fingerprints(work.fps[i], work.fps[j], cfg)
        if config.reshape:
            merged = reshape_fingerprint(merged)
        return merged

    while pending.sum() >= 2:
        candidates = np.where(pending, best_val, np.inf)
        i = int(candidates.argmin())
        j = int(best_idx[i])
        merged = _merge_pair(i, j)
        stats.n_merges += 1

        pending[i] = False
        pending[j] = False
        stretch[i, :] = np.inf
        stretch[:, i] = np.inf
        stretch[j, :] = np.inf
        stretch[:, j] = np.inf
        best_val[i] = best_val[j] = np.inf

        slot = work.append(merged)
        if merged.count >= k:
            finished.append(slot)
        else:
            pending[slot] = True
            targets = np.flatnonzero(pending)
            targets = targets[targets != slot]
            if targets.size:
                vals = one_vs_all(merged.data, merged.count, work, cfg, targets, chunk)
                stretch[slot, targets] = vals
                stretch[targets, slot] = vals
            _refresh_best(slot)

        # Repair neighbour caches invalidated by the removal/insertion.
        for r in np.flatnonzero(pending):
            r = int(r)
            if r == slot:
                continue
            if best_idx[r] in (i, j):
                _refresh_best(r)
            elif pending[slot] and stretch[r, slot] < best_val[r]:
                best_val[r] = stretch[r, slot]
                best_idx[r] = slot

    # A single non-anonymous leftover: fold it into the nearest finished
    # group so every subscriber ends up in a crowd of >= k.
    leftover = np.flatnonzero(pending)
    if leftover.size == 1:
        lo = int(leftover[0])
        if not finished:
            raise RuntimeError("no finished group to absorb the leftover fingerprint")
        targets = np.array(finished, dtype=np.int64)
        vals = one_vs_all(work.fps[lo].data, work.fps[lo].count, work, cfg, targets, chunk)
        tgt = int(targets[int(vals.argmin())])
        merged = _merge_pair(lo, tgt)
        stats.n_merges += 1
        stats.leftover_merged = True
        slot = work.append(merged)
        finished[finished.index(tgt)] = slot
        pending[lo] = False

    out = FingerprintDataset(name=f"{dataset.name}-glove-k{k}")
    for slot in finished:
        out.add(work.fps[slot])
    stats.n_output_fingerprints = len(out)

    if config.suppression.enabled:
        out, supp = suppress_dataset(out, config.suppression)
        stats.suppression = supp
    else:
        stats.suppression = SuppressionStats(
            total_samples=out.n_samples, discarded_samples=0, discarded_fingerprints=0
        )
    return GloveResult(dataset=out, stats=stats, config=config)
