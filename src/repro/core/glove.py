"""The GLOVE k-anonymization algorithm (paper Alg. 1, Section 6).

GLOVE greedily merges the two not-yet-anonymized fingerprints at
minimum fingerprint stretch effort (Eq. 10) until every fingerprint
hides at least ``k`` subscribers:

1. find, for every fingerprint, its nearest not-yet-anonymized
   neighbour under the stretch effort;
2. repeatedly pick the globally closest pair, merge it through
   specialized generalization (Eq. 12-13 with two-stage matching), and
   re-insert the merged fingerprint;
3. a merged fingerprint reaching ``count >= k`` is final and leaves the
   working set.

The loop of Alg. 1 ends when fewer than two non-anonymized fingerprints
remain.  With unfavourable group-size arithmetic a single non-anonymous
fingerprint can be left over; to honour the paper's "k-anonymity of all
fingerprints by design" guarantee, the leftover is merged into its
nearest *finished* group (documented design decision, see DESIGN.md).

Complexity is O(|M|^2 n-bar^2) as in the paper's Section 6.3.  All bulk
Eq. 10 evaluations run on the pluggable
:class:`repro.core.engine.StretchEngine` (the reproduction's stand-in
for the paper's CUDA offload); instead of materializing a dense
``(2n, 2n)`` stretch matrix, the loop keeps one cached nearest
neighbour per live slot (O(n) state) and uses the engine's bounding-box
lower bounds to prune exact evaluations that provably cannot beat a
current best.  The pruning is exact: results are identical, merge for
merge, to an exhaustive search (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.config import ComputeConfig, GloveConfig
from repro.core.dataset import FingerprintDataset
from repro.core.engine import (
    StretchEngine,
    get_default_compute,
    get_glove_driver,
    grow_array,
)
from repro.core.fingerprint import Fingerprint
from repro.core.merge import merge_fingerprints
from repro.core.reshape import reshape_fingerprint
from repro.core.suppression import SuppressionStats, suppress_dataset
from repro.obs import get_metrics


@dataclass
class GloveStats:
    """Bookkeeping of one GLOVE run.

    Attributes
    ----------
    n_input_fingerprints:
        Fingerprints in the input dataset.
    n_output_fingerprints:
        Groups in the anonymized output.
    n_merges:
        Pairwise merge operations performed.
    leftover_merged:
        Whether a final non-anonymous leftover had to be folded into an
        already-finished group.
    shards_used:
        Population partitions the run was split into (1 for the
        unsharded path; the ``sharded`` backend records its effective
        shard count here).
    boundary_repaired:
        Per-shard non-anonymous leftovers that the sharded tier's
        cross-shard boundary-repair pass had to re-merge (0 for
        unsharded runs).
    n_exact_evaluations:
        Exact Eq. 10 fingerprint-pair evaluations executed.
    n_pruned_evaluations:
        Candidate pairs skipped because a lower bound proved they could
        not beat the current best (0 when pruning is disabled).
    n_boundary_crossings:
        Python→kernel transitions the run's backend performed (a
        batched native call moving a whole probe batch counts one).
        The dispatch-efficiency denominator: a batched frontier that
        silently degrades to per-probe dispatch shows up here rather
        than only in wall time.
    n_probe_dispatches:
        Probe rows dispatched through the backend, across all entry
        points.  ``n_probe_dispatches / n_boundary_crossings`` is the
        mean probes-per-crossing of the run.
    n_batched_probes:
        Probe rows that went through a batched multi-probe kernel
        entry; 0 when every dispatch was a per-probe call.
    n_bound_pruned:
        (probe, target) pairs whose exact evaluation the backend's
        fused in-kernel bound sweep skipped (DESIGN.md D13); 0 on
        tiers without bounded entries.  These pairs are also counted
        in ``n_pruned_evaluations``.
    suppression:
        Sample-suppression statistics (zero counts when disabled).
    """

    n_input_fingerprints: int = 0
    n_output_fingerprints: int = 0
    n_merges: int = 0
    leftover_merged: bool = False
    shards_used: int = 1
    boundary_repaired: int = 0
    n_exact_evaluations: int = 0
    n_pruned_evaluations: int = 0
    n_boundary_crossings: int = 0
    n_probe_dispatches: int = 0
    n_batched_probes: int = 0
    n_bound_pruned: int = 0
    suppression: Optional[SuppressionStats] = None

    def record_metrics(self, registry) -> None:
        """Accumulate this run's counters into a metrics registry (D12).

        Uses ``inc`` (not absolute writes): one process may run many
        GLOVE invocations (every stream window, every shard), and the
        registry keeps the process-wide totals across them.
        """
        registry.counter("glove.runs").inc()
        registry.counter("glove.merges").inc(self.n_merges)
        registry.counter("glove.exact_evaluations").inc(self.n_exact_evaluations)
        registry.counter("glove.pruned_evaluations").inc(self.n_pruned_evaluations)
        registry.counter("engine.boundary_crossings").inc(self.n_boundary_crossings)
        registry.counter("engine.probe_dispatches").inc(self.n_probe_dispatches)
        registry.counter("engine.batched_probes").inc(self.n_batched_probes)
        registry.counter("engine.bound_pruned").inc(self.n_bound_pruned)


@dataclass(frozen=True)
class GloveResult:
    """Anonymized dataset plus run statistics."""

    dataset: FingerprintDataset
    stats: GloveStats
    config: GloveConfig


#: Candidates per exact-kernel batch in the pruned best-first scans.
_SCAN_BATCH = 32

#: Probe slots per multi-probe block in the triangular initial build.
#: Larger blocks coalesce more dispatches but see staler candidate
#: bests (more non-prunable evaluations); 8 balances the two.
_BUILD_BLOCK = 8


class _NearestNeighbours:
    """Lazy per-slot nearest-neighbour cache over a stretch engine.

    For every pending slot ``r`` it caches ``best_val[r]`` /
    ``best_idx[r]``: the minimum stretch effort to any other pending
    slot and that slot's id (ties broken toward the lowest id, exactly
    like an exhaustive ``argmin``).  The cache is repaired lazily: a
    slot is re-scanned only when its cached neighbour is merged away,
    and scans walk candidates in lower-bound order so that the exact
    Eq. 10 kernel runs only for candidates whose bound does not already
    exceed the current best.
    """

    def __init__(self, engine: StretchEngine, stats: GloveStats):
        self.engine = engine
        self.stats = stats
        cap = engine.store.capacity
        self.best_val = np.full(cap, np.inf, dtype=np.float64)
        self.best_idx = np.full(cap, -1, dtype=np.int64)

    def ensure_capacity(self) -> None:
        """Grow the cache arrays alongside the slot store."""
        cap = self.engine.store.capacity
        self.best_val = grow_array(self.best_val, cap, np.inf)
        self.best_idx = grow_array(self.best_idx, cap, -1)

    def drop(self, slot: int) -> None:
        """Forget a retired slot's cached neighbour."""
        self.best_val[slot] = np.inf
        self.best_idx[slot] = -1

    def _exact(self, slot: int, targets: np.ndarray) -> np.ndarray:
        self.stats.n_exact_evaluations += targets.size
        return self.engine.row(slot, targets)

    def scan(self, slot: int, candidates: np.ndarray) -> tuple:
        """Nearest candidate of a slot: ``(value, candidate_slot)``.

        ``candidates`` must be in ascending slot order; ties in the
        effort resolve to the lowest slot id regardless of the order in
        which the pruned walk visits them.
        """
        cands = np.asarray(candidates, dtype=np.int64)
        engine = self.engine
        if engine.fused_pruning and cands.size:
            best, best_idx, pruned = engine.bounded_argmin([slot], cands)
            self.stats.n_exact_evaluations += int(cands.size - pruned[0])
            self.stats.n_pruned_evaluations += int(pruned[0])
            return float(best[0]), int(best_idx[0])
        return self._walk(slot, cands, np.zeros(cands.size, dtype=bool))

    def refresh(self, slot: int, candidates: np.ndarray) -> None:
        """Re-derive a slot's cached neighbour from scratch."""
        self.best_val[slot], self.best_idx[slot] = self.scan(slot, candidates)

    def refresh_many(self, slots: np.ndarray, candidates: np.ndarray) -> None:
        """Re-derive several slots' cached neighbours in one batched pass.

        ``candidates`` is the shared pending set (ascending); each probe
        slot is masked out of its own candidates.  All probes' exact
        evaluations of one walk round coalesce into a single multi-probe
        engine dispatch, but the per-pair values — and hence every
        ``(value, neighbour)`` result — are bitwise identical to calling
        :meth:`refresh` per slot (see :meth:`_walk_many`).
        """
        slots = np.asarray(slots, dtype=np.int64)
        cands = np.asarray(candidates, dtype=np.int64)
        engine = self.engine
        if engine.fused_pruning:
            # The argmin kernel skips self-pairs in-kernel, so the
            # shared candidate set goes down unmasked.
            best, best_idx, pruned = engine.bounded_argmin(slots, cands)
            n_valid = int((cands[None, :] != slots[:, None]).sum())
            n_pruned = int(pruned.sum())
            self.stats.n_exact_evaluations += n_valid - n_pruned
            self.stats.n_pruned_evaluations += n_pruned
            self.best_val[slots] = best
            self.best_idx[slots] = best_idx
            return
        valid = cands[None, :] != slots[:, None]
        reverse = np.zeros((slots.size, cands.size), dtype=bool)
        best, best_idx, _ = self._walk_many(slots, cands, valid, reverse)
        self.best_val[slots] = best
        self.best_idx[slots] = best_idx

    def build(self, initial: np.ndarray) -> None:
        """Triangular initial build in multi-probe blocks.

        Each slot scans only the slots before it and propagates the
        directed value back, so every unordered pair is evaluated at
        most once — like the seed path's upper-triangle build.  Blocks
        of ``_BUILD_BLOCK`` probes walk in lock-step with coalesced
        exact dispatches; results are bitwise identical to the
        sequential ``insert()``-per-slot build (see :meth:`_walk_many`):
        walk results are assigned first and buffered reverse proposals
        resolved afterwards, which reproduces the sequential
        strict-improvement order exactly.
        """
        self.ensure_capacity()
        initial = np.asarray(initial, dtype=np.int64)
        if self.engine.fused_pruning:
            self._build_fused(initial)
            return
        for s in range(0, initial.size, _BUILD_BLOCK):
            block = initial[s : s + _BUILD_BLOCK]
            cands = initial[: s + block.size - 1]
            # Probe q (global position s+q) may only see its prefix.
            valid = np.arange(cands.size)[None, :] < (s + np.arange(block.size))[:, None]
            best, best_idx, proposals = self._walk_many(block, cands, valid, valid)
            self.best_val[block] = best
            self.best_idx[block] = best_idx
            for tgt, (val, probe) in proposals.items():
                if val < self.best_val[tgt]:
                    self.best_val[tgt] = val
                    self.best_idx[tgt] = probe

    def _build_fused(self, initial: np.ndarray) -> None:
        """Triangular build through the fused bounded row kernel.

        Same block structure and proposal resolution as :meth:`build`,
        but each probe's prefix row comes back from one bounded kernel
        call with ``+inf`` sentinels at pruned positions.  Pruned pairs
        have bound > the probe's running best (can't change its argmin)
        and bound >= the target's cached best snapshot (can't win a
        resolved proposal: the sequential path applies a proposal only
        on strict improvement), so results stay bitwise identical.
        """
        engine = self.engine
        for s in range(0, initial.size, _BUILD_BLOCK):
            block = initial[s : s + _BUILD_BLOCK]
            # Probe q (global position s+q) sees exactly its prefix.
            t_lists = [initial[: s + q] for q in range(block.size)]
            rev_lists = [np.ones(t.size, dtype=bool) for t in t_lists]
            rows, pruned = engine.bounded_rows_some(
                block, t_lists, rev_lists, self.best_val
            )
            n_valid = sum(t.size for t in t_lists)
            n_pruned = int(pruned.sum())
            self.stats.n_exact_evaluations += n_valid - n_pruned
            self.stats.n_pruned_evaluations += n_pruned
            proposals: dict = {}
            best = np.full(block.size, np.inf)
            best_idx = np.full(block.size, -1, dtype=np.int64)
            for q in range(block.size):
                vals, tgts = rows[q], t_lists[q]
                ev = vals < np.inf
                if not ev.any():
                    continue
                vmin = float(vals.min())
                best[q] = vmin
                best_idx[q] = int(tgts[vals == vmin].min())
                p_slot = int(block[q])
                for t, v in zip(tgts[ev].tolist(), vals[ev].tolist()):
                    cur = proposals.get(t)
                    if cur is None or v < cur[0] or (v == cur[0] and p_slot < cur[1]):
                        proposals[t] = (v, p_slot)
            self.best_val[block] = best
            self.best_idx[block] = best_idx
            for tgt, (val, probe) in proposals.items():
                if val < self.best_val[tgt]:
                    self.best_val[tgt] = val
                    self.best_idx[tgt] = probe

    def insert(self, slot: int, candidates: np.ndarray, reverse: np.ndarray) -> None:
        """Find a fresh slot's neighbour and propagate it into others.

        Combines two walks the dense-matrix formulation did with one
        row: finding the new slot's own nearest candidate, and updating
        every candidate ``r`` whose cached best the new slot strictly
        beats.  ``reverse`` masks which candidates may receive that
        propagation (slots queued for a full refresh hold stale values
        and are excluded).  Candidates must be in ascending slot order.
        """
        self.ensure_capacity()
        cands = np.asarray(candidates, dtype=np.int64)
        self.best_val[slot], self.best_idx[slot] = self._walk(slot, cands, reverse)

    def _walk(self, slot: int, cands: np.ndarray, reverse: np.ndarray) -> tuple:
        """Pruned best-first walk shared by :meth:`scan` and :meth:`insert`.

        Walks candidates in lower-bound order, running the exact kernel
        only where a bound could still beat the running best (tie rule:
        lowest slot id, exactly like an exhaustive ``argmin``) or —
        where ``reverse`` allows — strictly beat a candidate's own
        cached best, in which case that candidate adopts ``slot``.
        Returns the ``(value, candidate)`` nearest pair for ``slot``.
        """
        if cands.size == 0:
            return np.inf, -1
        engine = self.engine

        if engine.fused_pruning:
            rows, pruned = engine.bounded_rows_some(
                [slot], [cands], [reverse], self.best_val
            )
            vals = rows[0]
            self.stats.n_exact_evaluations += int(cands.size - pruned[0])
            self.stats.n_pruned_evaluations += int(pruned[0])
            # +inf sentinels at pruned positions lose both comparisons
            # below by construction (bound > running best, and for
            # reverse targets bound >= their cached best).
            upd = reverse & (vals < self.best_val[cands])
            tgt = cands[upd]
            self.best_val[tgt] = vals[upd]
            self.best_idx[tgt] = slot
            vmin = float(vals.min())
            return vmin, int(cands[vals == vmin].min())

        def propagate(sub: np.ndarray, vals: np.ndarray) -> None:
            upd = reverse[sub] & (vals < self.best_val[cands[sub]])
            tgt = cands[sub[upd]]
            self.best_val[tgt] = vals[upd]
            self.best_idx[tgt] = slot

        if not engine.pruning:
            vals = self._exact(slot, cands)
            j = int(vals.argmin())
            propagate(np.arange(cands.size), vals)
            return float(vals[j]), int(cands[j])

        lb0 = engine.hull_lower_bounds(slot, cands)
        order = np.argsort(lb0, kind="stable")
        best, best_idx = np.inf, -1
        evaluated = 0
        pos = 0
        while pos < order.size:
            rest = order[pos:]
            if lb0[rest[0]] > best and not (
                reverse[rest] & (lb0[rest] < self.best_val[cands[rest]])
            ).any():
                break
            sel = rest[:_SCAN_BATCH]
            need = (lb0[sel] <= best) | (reverse[sel] & (lb0[sel] < self.best_val[cands[sel]]))
            sub = sel[need]
            if sub.size and engine.lb1_pruning:
                lb1 = engine.bucket_lower_bounds(slot, cands[sub])
                need = (lb1 <= best) | (reverse[sub] & (lb1 < self.best_val[cands[sub]]))
                sub = sub[need]
            if sub.size:
                vals = self._exact(slot, cands[sub])
                evaluated += sub.size
                vmin = float(vals.min())
                cmin = int(cands[sub][vals == vmin].min())
                if vmin < best or (vmin == best and cmin < best_idx):
                    best, best_idx = vmin, cmin
                propagate(sub, vals)
            pos += _SCAN_BATCH
        self.stats.n_pruned_evaluations += cands.size - evaluated
        return best, best_idx

    def _walk_many(
        self,
        slots: np.ndarray,
        cands: np.ndarray,
        valid: np.ndarray,
        reverse: np.ndarray,
    ) -> tuple:
        """Lock-step pruned walks of several probes over shared candidates.

        The multi-probe counterpart of :meth:`_walk`: each probe walks
        its valid candidates (``valid[p, c]``) in lower-bound order with
        the same batch size and pruning conditions, but the exact
        evaluations of all still-active probes in a round are coalesced
        into one ragged engine dispatch.  Reverse propagations are
        buffered as proposals and resolved by the caller (minimum value,
        ties to the lowest probe slot) *after* assigning the walk
        results, which reproduces the sequential apply order bit for
        bit.  Correctness of the batching does not depend on probes
        seeing each other's in-flight updates: candidate cached bests
        read during the walk are upper bounds of their sequential
        counterparts, so every pair the sequential walks would evaluate
        for its result is also evaluated here, extra evaluations never
        change a minimum or a resolved proposal, and per-pair values are
        batch-composition-independent.

        Returns ``(best_vals, best_idxs, proposals)`` with ``proposals``
        mapping candidate slot -> ``(value, probe_slot)``.
        """
        P, C = slots.size, cands.size
        best = np.full(P, np.inf)
        best_idx = np.full(P, -1, dtype=np.int64)
        proposals: dict = {}

        def propose(p_slot: int, tgts: np.ndarray, vals: np.ndarray) -> None:
            for t, v in zip(tgts.tolist(), vals.tolist()):
                cur = proposals.get(t)
                if cur is None or v < cur[0] or (v == cur[0] and p_slot < cur[1]):
                    proposals[t] = (v, p_slot)

        if P == 0 or C == 0:
            return best, best_idx, proposals
        engine = self.engine

        if not engine.pruning:
            t_lists = [cands[valid[p]] for p in range(P)]
            rows = engine.rows_some(slots, t_lists)
            for p in range(P):
                vals, tgts = rows[p], t_lists[p]
                self.stats.n_exact_evaluations += tgts.size
                if vals.size:
                    j = int(vals.argmin())
                    best[p], best_idx[p] = float(vals[j]), int(tgts[j])
                    rmask = reverse[p, valid[p]]
                    propose(int(slots[p]), tgts[rmask], vals[rmask])
            return best, best_idx, proposals

        lb0 = engine.hull_lower_bounds_many(slots, cands)
        n_valid = valid.sum(axis=1)
        # Invalid candidates carry finite hull bounds too, so push them
        # past every valid candidate: the first n_valid positions of
        # each probe's order are then exactly its valid candidates.
        lb0 = np.where(valid, lb0, np.inf)
        order = np.argsort(lb0, axis=1, kind="stable")
        pos = np.zeros(P, dtype=np.int64)
        active = n_valid > 0
        evaluated = np.zeros(P, dtype=np.int64)
        while active.any():
            round_subs: list = []
            for p in np.flatnonzero(active):
                if pos[p] >= n_valid[p]:
                    active[p] = False
                    continue
                rest = order[p, pos[p] : n_valid[p]]
                l_rest = lb0[p, rest]
                if l_rest[0] > best[p] and not (
                    reverse[p, rest] & (l_rest < self.best_val[cands[rest]])
                ).any():
                    active[p] = False
                    continue
                sel = rest[:_SCAN_BATCH]
                need = (lb0[p, sel] <= best[p]) | (
                    reverse[p, sel] & (lb0[p, sel] < self.best_val[cands[sel]])
                )
                sub = sel[need]
                if sub.size and engine.lb1_pruning:
                    lb1 = engine.bucket_lower_bounds(int(slots[p]), cands[sub])
                    need = (lb1 <= best[p]) | (
                        reverse[p, sub] & (lb1 < self.best_val[cands[sub]])
                    )
                    sub = sub[need]
                pos[p] += _SCAN_BATCH
                if sub.size:
                    round_subs.append((int(p), sub))
            if round_subs:
                probe_pos = [p for p, _ in round_subs]
                t_lists = [cands[sub] for _, sub in round_subs]
                rows = engine.rows_some(slots[probe_pos], t_lists)
                for (p, sub), tgts, vals in zip(round_subs, t_lists, rows):
                    self.stats.n_exact_evaluations += sub.size
                    evaluated[p] += sub.size
                    vmin = float(vals.min())
                    cmin = int(tgts[vals == vmin].min())
                    if vmin < best[p] or (vmin == best[p] and cmin < best_idx[p]):
                        best[p], best_idx[p] = vmin, cmin
                    rmask = reverse[p, sub]
                    if rmask.any():
                        propose(int(slots[p]), tgts[rmask], vals[rmask])
        self.stats.n_pruned_evaluations += int((n_valid - evaluated).sum())
        return best, best_idx, proposals


def glove(
    dataset: FingerprintDataset,
    config: GloveConfig = GloveConfig(),
    compute: Optional[ComputeConfig] = None,
) -> GloveResult:
    """k-anonymize a fingerprint dataset with GLOVE.

    Parameters
    ----------
    dataset:
        Input movement micro-data; every fingerprint must be non-empty
        and represent a single subscriber (``count == 1``) or an
        already-formed group.
    config:
        Anonymity level, stretch metric, suppression, reshaping.
    compute:
        Compute-substrate selection (backend, chunking, workers,
        pruning); defaults to the process-wide
        :func:`repro.core.engine.get_default_compute`.  Backends with a
        registered glove driver (e.g. ``sharded``) take over the whole
        run; for plain kernel backends the choice never changes
        results, only how fast they arrive.

    Returns
    -------
    :class:`GloveResult` whose dataset contains one fingerprint per
    group, each hiding at least ``config.k`` subscribers.
    """
    compute = compute if compute is not None else get_default_compute()
    driver = get_glove_driver(compute.backend)
    if driver is not None:
        return driver(dataset, config, compute)

    fps = list(dataset)
    k = config.k
    validate_population(fps, k)
    stats = GloveStats(n_input_fingerprints=len(fps))
    with StretchEngine(fps, stretch=config.stretch, compute=compute) as engine:
        out = _anonymize(engine, fps, config, stats, name=f"{dataset.name}-glove-k{k}")
        (
            stats.n_boundary_crossings,
            stats.n_probe_dispatches,
            stats.n_batched_probes,
            stats.n_bound_pruned,
        ) = engine.backend.dispatch_counters()
    return finalize_result(out, stats, config)


def validate_population(fps: List[Fingerprint], k: int) -> None:
    """Reject inputs that cannot be k-anonymized (shared with the sharded tier)."""
    total_users = sum(fp.count for fp in fps)
    if total_users < k:
        raise ValueError(f"dataset hides {total_users} users in total, cannot reach k={k}")
    if any(fp.m == 0 for fp in fps):
        raise ValueError("input contains empty fingerprints; screen the dataset first")


def finalize_result(
    out: FingerprintDataset, stats: GloveStats, config: GloveConfig
) -> GloveResult:
    """Apply output suppression and package a :class:`GloveResult`.

    Every anonymization path funnels through here — batch, sharded and
    per-stream-window — so this is also where a run's counters join the
    process-wide metrics registry (a no-op unless one is installed).
    """
    if config.suppression.enabled:
        out, supp = suppress_dataset(out, config.suppression)
        stats.suppression = supp
    else:
        stats.suppression = SuppressionStats(
            total_samples=out.n_samples, discarded_samples=0, discarded_fingerprints=0
        )
    stats.record_metrics(get_metrics())
    return GloveResult(dataset=out, stats=stats, config=config)


def _anonymize(
    engine: StretchEngine,
    fps: List[Fingerprint],
    config: GloveConfig,
    stats: GloveStats,
    name: str,
) -> FingerprintDataset:
    """Full Alg. 1 on a stretch engine: greedy loop plus leftover fold."""
    finished, leftover, nn = _greedy_merge(engine, fps, config, stats)
    if leftover is not None:
        _fold_leftover(engine, nn, finished, leftover, config, stats)
    out = FingerprintDataset(name=name)
    for slot in finished:
        out.add(engine.store.fps[slot])
    stats.n_output_fingerprints = len(out)
    return out


def _merge_pair(a: Fingerprint, b: Fingerprint, config: GloveConfig) -> Fingerprint:
    """Merge (and optionally reshape) two fingerprints per the config.

    The single definition of GLOVE's merge post-processing, shared by
    the greedy loop, the leftover fold and the sharded tier's boundary
    repair so the steps can never diverge.
    """
    merged = merge_fingerprints(a, b, config.stretch)
    if config.reshape:
        merged = reshape_fingerprint(merged)
    return merged


def _greedy_merge(
    engine: StretchEngine,
    fps: List[Fingerprint],
    config: GloveConfig,
    stats: GloveStats,
) -> tuple:
    """The greedy merge loop of Alg. 1 on top of a stretch engine.

    Runs until fewer than two non-anonymized fingerprints remain and
    returns ``(finished_slots, leftover_slot, nn)``: the slots of the
    groups that reached ``count >= k``, the at-most-one still
    non-anonymous slot (``None`` when the arithmetic worked out), and
    the nearest-neighbour cache for callers that need further scans.
    The sharded tier uses this entry point per shard and handles
    leftovers in its cross-shard boundary-repair pass instead of the
    local fold of :func:`_fold_leftover`.
    """
    store = engine.store
    k = config.k
    n = len(fps)

    pending = np.zeros(store.capacity, dtype=bool)
    pending[:n] = store.counts[:n] < k
    finished: List[int] = [s for s in range(n) if not pending[s]]
    nn = _NearestNeighbours(engine, stats)

    # Triangular initial build, dispatched in multi-probe blocks (every
    # unordered pair evaluated at most once, bitwise identical to the
    # sequential insert()-per-slot build — see _NearestNeighbours.build).
    nn.build(np.flatnonzero(pending))

    def merge_pair(i: int, j: int) -> Fingerprint:
        return _merge_pair(store.fps[i], store.fps[j], config)

    while pending.sum() >= 2:
        live = np.flatnonzero(pending)
        i = int(live[nn.best_val[live].argmin()])
        j = int(nn.best_idx[i])
        merged = merge_pair(i, j)
        stats.n_merges += 1

        pending[i] = pending[j] = False
        engine.retire(i)
        engine.retire(j)
        nn.drop(i)
        nn.drop(j)
        # Slots whose cached neighbour just died need a full re-scan;
        # everyone else at most adopts the merge product (below).
        bi = nn.best_idx[live]
        invalidated = live[((bi == i) | (bi == j)) & (live != i) & (live != j)]

        slot = engine.append(merged)
        pending = grow_array(pending, store.capacity, False)
        nn.ensure_capacity()
        if merged.count >= k:
            finished.append(slot)
        else:
            pending[slot] = True
            targets = np.flatnonzero(pending)
            targets = targets[targets != slot]
            reverse = np.ones(targets.size, dtype=bool)
            if invalidated.size:
                reverse = ~np.isin(targets, invalidated)
            nn.insert(slot, targets, reverse)

        if invalidated.size:
            # One candidate scan per iteration (not per invalidated
            # slot), and all refresh walks batched into multi-probe
            # dispatches.
            nn.refresh_many(invalidated, np.flatnonzero(pending))

    leftover = np.flatnonzero(pending)
    return finished, (int(leftover[0]) if leftover.size else None), nn


def _fold_leftover(
    engine: StretchEngine,
    nn: "_NearestNeighbours",
    finished: List[int],
    leftover: int,
    config: GloveConfig,
    stats: GloveStats,
) -> None:
    """Fold a single non-anonymous leftover into the nearest finished
    group so every subscriber ends up in a crowd of >= k (DESIGN.md D2).

    Mutates ``finished`` in place: the absorbing group's slot is
    replaced by the merge product's.
    """
    if not finished:
        raise RuntimeError("no finished group to absorb the leftover fingerprint")
    _, tgt = nn.scan(leftover, np.array(sorted(finished), dtype=np.int64))
    merged = _merge_pair(engine.store.fps[leftover], engine.store.fps[tgt], config)
    stats.n_merges += 1
    stats.leftover_merged = True
    slot = engine.append(merged)
    engine.retire(leftover)
    engine.retire(tgt)
    finished[finished.index(tgt)] = slot
