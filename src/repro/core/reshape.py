"""Reshaping: resolution of temporal overlaps in merged fingerprints.

Merging may produce samples whose time intervals overlap while their
geographic areas differ (paper Fig. 6b): formally correct but hard to
read or analyze.  Reshaping sweeps the samples in time order and
replaces every run of temporally-overlapping samples with a single new
sample covering the union of their time intervals and of their
geographic areas (Eq. 12-13 applied to the run).

Reshaping costs spatial granularity but improves usability; GLOVE runs
it by default after every merge, as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.core.fingerprint import Fingerprint
from repro.core.merge import generalize_rows
from repro.core.sample import DT, NCOLS, T


def has_temporal_overlap(data: np.ndarray, atol: float = 1e-9) -> bool:
    """Whether any two sample intervals of a time-sorted array overlap.

    Samples that merely touch (one ends exactly when the next starts)
    are not considered overlapping.
    """
    if data.shape[0] < 2:
        return False
    order = np.argsort(data[:, T], kind="stable")
    starts = data[order, T]
    ends = starts + data[order, DT]
    return bool((starts[1:] < np.maximum.accumulate(ends[:-1]) - atol).any())


def reshape_sample_array(data: np.ndarray, atol: float = 1e-9) -> np.ndarray:
    """Merge every run of temporally-overlapping samples into one sample.

    Returns a new time-sorted ``(m', 6)`` array, ``m' <= m``, whose
    intervals are pairwise non-overlapping.  Idempotent.
    """
    if data.shape[0] < 2:
        return data.copy()
    order = np.argsort(data[:, T], kind="stable")
    rows = data[order]

    groups = []
    current = [rows[0]]
    current_end = rows[0, T] + rows[0, DT]
    for row in rows[1:]:
        if row[T] < current_end - atol:
            current.append(row)
            current_end = max(current_end, row[T] + row[DT])
        else:
            groups.append(current)
            current = [row]
            current_end = row[T] + row[DT]
    groups.append(current)

    out = np.empty((len(groups), NCOLS), dtype=np.float64)
    for i, group in enumerate(groups):
        if len(group) == 1:
            out[i] = group[0]
        else:
            out[i] = generalize_rows(np.vstack(group))
    return out


def reshape_fingerprint(fp: Fingerprint) -> Fingerprint:
    """Reshaped copy of a fingerprint (no-op if no overlaps exist)."""
    if not has_temporal_overlap(fp.data):
        return fp
    return fp.with_samples(reshape_sample_array(fp.data))
