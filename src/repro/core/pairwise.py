"""Bulk, vectorized fingerprint stretch-effort kernels.

The paper offloads the O(|M|^2) evaluations of Eq. 10 to a CUDA GPU
(Section 6.3).  This module is the reproduction's equivalent substrate:
fingerprints are packed into a padded ``(N, m_max, 6)`` tensor with a
validity mask, and one-vs-all stretch efforts are computed with NumPy
broadcasting, chunked to bound peak memory.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.core.config import DEFAULT_CHUNK, StretchConfig
from repro.core.fingerprint import Fingerprint
from repro.core.sample import DT, DX, DY, NCOLS, T, X, Y


class PaddedFingerprints:
    """Fingerprints packed into a padded tensor for bulk kernels.

    Attributes
    ----------
    data:
        ``(N, m_max, 6)`` float64 tensor; rows beyond a fingerprint's
        length are zero-filled and masked out.
    mask:
        ``(N, m_max)`` boolean validity mask.
    lengths:
        ``(N,)`` sample counts per fingerprint.
    counts:
        ``(N,)`` subscribers hidden per fingerprint (Eq. 4 weights).
    """

    def __init__(self, fingerprints: Sequence[Fingerprint]):
        fps = list(fingerprints)
        if not fps:
            raise ValueError("cannot pack an empty fingerprint collection")
        if any(fp.m == 0 for fp in fps):
            raise ValueError("cannot pack fingerprints with zero samples")
        self.uids: List[str] = [fp.uid for fp in fps]
        self.lengths = np.array([fp.m for fp in fps], dtype=np.int64)
        self.counts = np.array([fp.count for fp in fps], dtype=np.int64)
        m_max = int(self.lengths.max())
        n = len(fps)
        self.data = np.zeros((n, m_max, NCOLS), dtype=np.float64)
        self.mask = np.zeros((n, m_max), dtype=bool)
        for i, fp in enumerate(fps):
            self.data[i, : fp.m] = fp.data
            self.mask[i, : fp.m] = True

    def __len__(self) -> int:
        return self.data.shape[0]


def one_vs_all(
    a_data: np.ndarray,
    n_a: int,
    packed: PaddedFingerprints,
    config: StretchConfig = StretchConfig(),
    indices: Optional[np.ndarray] = None,
    chunk: int = DEFAULT_CHUNK,
) -> np.ndarray:
    """Fingerprint stretch efforts (Eq. 10) from one fingerprint to many.

    Parameters
    ----------
    a_data:
        ``(ma, 6)`` sample array of the probe fingerprint.
    n_a:
        Subscribers hidden in the probe fingerprint.
    packed:
        Target fingerprints, packed.
    indices:
        Optional subset of target indices to evaluate; defaults to all.
    chunk:
        Targets per broadcast chunk.

    Returns
    -------
    Float64 array of ``Delta_ab`` values, aligned with ``indices``.
    """
    if a_data.shape[0] == 0:
        raise ValueError("probe fingerprint has no samples")
    if indices is None:
        indices = np.arange(len(packed))
    indices = np.asarray(indices, dtype=np.int64)
    out = np.empty(indices.shape[0], dtype=np.float64)

    ma = a_data.shape[0]
    ax = a_data[:, X][None, :, None]
    adx = a_data[:, DX][None, :, None]
    ay = a_data[:, Y][None, :, None]
    ady = a_data[:, DY][None, :, None]
    at = a_data[:, T][None, :, None]
    adt = a_data[:, DT][None, :, None]
    a_ext_s = adx + ady

    for start in range(0, indices.shape[0], chunk):
        sel = indices[start : start + chunk]
        b = packed.data[sel]
        mask = packed.mask[sel]
        len_b = packed.lengths[sel]
        n_b = packed.counts[sel].astype(np.float64)

        w_a = (n_a / (n_a + n_b))[:, None, None]
        w_b = (n_b / (n_a + n_b))[:, None, None]

        bx = b[:, :, X][:, None, :]
        bdx = b[:, :, DX][:, None, :]
        by = b[:, :, Y][:, None, :]
        bdy = b[:, :, DY][:, None, :]
        bt = b[:, :, T][:, None, :]
        bdt = b[:, :, DT][:, None, :]

        ux = np.maximum(ax + adx, bx + bdx) - np.minimum(ax, bx)
        uy = np.maximum(ay + ady, by + bdy) - np.minimum(ay, by)
        ut = np.maximum(at + adt, bt + bdt) - np.minimum(at, bt)

        # Clamped at zero against floating-point cancellation noise.
        # The weighted own-extent terms are summed before subtracting so
        # the expression is bitwise symmetric under a probe/target role
        # swap (addition commutes exactly; chained subtraction doesn't).
        raw_s = np.maximum((ux + uy) - (w_a * a_ext_s + w_b * (bdx + bdy)), 0.0)
        raw_t = np.maximum(ut - (w_a * adt + w_b * bdt), 0.0)

        delta = config.w_sigma * np.minimum(raw_s / config.phi_max_sigma_m, 1.0)
        delta += config.w_tau * np.minimum(raw_t / config.phi_max_tau_min, 1.0)

        # Mask out padding: invalid target samples must never be matched.
        delta[~mask[:, None, :].repeat(ma, axis=1)] = np.inf

        # Case ma > mb: for each probe sample, nearest target sample.
        # Both directional means sum a zero-padded (C, pad_width) array:
        # NumPy's pairwise summation groups operands by array length, so
        # identical shapes keep the kernel bitwise symmetric under a
        # probe/target role swap.
        pad_width = max(ma, delta.shape[2])
        per_a = delta.min(axis=2)  # (C, ma)
        if per_a.shape[1] < pad_width:
            padded = np.zeros((per_a.shape[0], pad_width), dtype=per_a.dtype)
            padded[:, : per_a.shape[1]] = per_a
            per_a = padded
        mean_long_a = per_a.sum(axis=1) / ma

        # Case mb > ma: for each *valid* target sample, nearest probe sample.
        per_b = delta.min(axis=1)  # (C, m_max)
        per_b = np.where(mask, per_b, 0.0)
        if per_b.shape[1] < pad_width:
            padded = np.zeros((per_b.shape[0], pad_width), dtype=per_b.dtype)
            padded[:, : per_b.shape[1]] = per_b
            per_b = padded
        mean_long_b = per_b.sum(axis=1) / len_b

        # Equal lengths: average both directions (symmetric tie rule,
        # see repro.core.stretch.fingerprint_stretch).
        out[start : start + sel.shape[0]] = np.where(
            ma > len_b,
            mean_long_a,
            np.where(len_b > ma, mean_long_b, (mean_long_a + mean_long_b) / 2.0),
        )
    return out


def pairwise_matrix(
    fingerprints: Sequence[Fingerprint],
    config: StretchConfig = StretchConfig(),
    chunk: int = DEFAULT_CHUNK,
) -> np.ndarray:
    """Full symmetric ``Delta_ab`` matrix for a fingerprint collection.

    The diagonal is set to ``+inf`` so that row-wise minima directly give
    nearest-neighbour efforts.
    """
    fps = list(fingerprints)
    packed = PaddedFingerprints(fps)
    n = len(fps)
    mat = np.full((n, n), np.inf, dtype=np.float64)
    for i, fp in enumerate(fps):
        if i + 1 >= n:
            break
        targets = np.arange(i + 1, n)
        vals = one_vs_all(fp.data, fp.count, packed, config, indices=targets, chunk=chunk)
        mat[i, i + 1 :] = vals
        mat[i + 1 :, i] = vals
    return mat


def k_nearest(
    matrix: np.ndarray,
    k_minus_1: int,
) -> tuple:
    """Indices and efforts of each row's ``k-1`` nearest fingerprints.

    Parameters
    ----------
    matrix:
        Symmetric ``Delta`` matrix with ``+inf`` diagonal.
    k_minus_1:
        Crowd size minus one (the ``k-1`` of Eq. 11).

    Returns
    -------
    ``(indices, efforts)`` with shapes ``(n, k-1)``; each row's entries
    are sorted by increasing effort.
    """
    n = matrix.shape[0]
    if k_minus_1 < 1:
        raise ValueError(f"k-1 must be at least 1, got {k_minus_1}")
    if k_minus_1 > n - 1:
        raise ValueError(f"k-1={k_minus_1} exceeds available neighbours ({n - 1})")
    part = np.argpartition(matrix, k_minus_1 - 1, axis=1)[:, :k_minus_1]
    efforts = np.take_along_axis(matrix, part, axis=1)
    order = np.argsort(efforts, axis=1, kind="stable")
    return np.take_along_axis(part, order, axis=1), np.take_along_axis(efforts, order, axis=1)
