"""Bulk, vectorized fingerprint stretch-effort kernels.

The paper offloads the O(|M|^2) evaluations of Eq. 10 to a CUDA GPU
(Section 6.3).  This module is the reproduction's equivalent substrate:
fingerprints are packed into a padded ``(N, m_max, 6)`` tensor with a
validity mask, and one-vs-all stretch efforts are computed with NumPy
broadcasting, chunked to bound peak memory.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.core.config import DEFAULT_CHUNK, StretchConfig
from repro.core.fingerprint import Fingerprint
from repro.core.sample import DT, DX, DY, NCOLS, T, X, Y


class PaddedFingerprints:
    """Fingerprints packed into a padded tensor for bulk kernels.

    Attributes
    ----------
    data:
        ``(N, m_max, 6)`` float64 tensor; rows beyond a fingerprint's
        length are zero-filled and masked out.
    mask:
        ``(N, m_max)`` boolean validity mask.
    lengths:
        ``(N,)`` sample counts per fingerprint.
    counts:
        ``(N,)`` subscribers hidden per fingerprint (Eq. 4 weights).
    """

    def __init__(self, fingerprints: Sequence[Fingerprint]):
        fps = list(fingerprints)
        if not fps:
            raise ValueError("cannot pack an empty fingerprint collection")
        if any(fp.m == 0 for fp in fps):
            raise ValueError("cannot pack fingerprints with zero samples")
        self.uids: List[str] = [fp.uid for fp in fps]
        self.lengths = np.array([fp.m for fp in fps], dtype=np.int64)
        self.counts = np.array([fp.count for fp in fps], dtype=np.int64)
        m_max = int(self.lengths.max())
        n = len(fps)
        self.data = np.zeros((n, m_max, NCOLS), dtype=np.float64)
        self.mask = np.zeros((n, m_max), dtype=bool)
        for i, fp in enumerate(fps):
            self.data[i, : fp.m] = fp.data
            self.mask[i, : fp.m] = True

    def __len__(self) -> int:
        return self.data.shape[0]


class ProbeBatch:
    """A probe batch packed into a contiguous padded tensor.

    The multi-probe counterpart of :class:`PaddedFingerprints` for the
    *probe* side of a batched dispatch: ``P`` variable-length probes
    become one C-contiguous ``(P, p_m_max, 6)`` float64 tensor plus
    ``lengths``/``counts`` vectors, the exact struct-of-arrays layout
    the batched native kernels (:mod:`repro.core.kernels`
    ``many_vs_all_arrays``/``many_vs_some_arrays``) take — one
    Python→native boundary crossing moves the whole batch.  Row slices
    (``data[a:b]``, ``lengths[a:b]``, …) stay contiguous, which is what
    lets the engine's thread splitter hand disjoint sub-batches to
    GIL-released kernel calls without copies.
    """

    __slots__ = ("data", "lengths", "counts")

    def __init__(self, probes: Sequence[np.ndarray], probe_counts: Sequence[int]):
        if len(probes) != len(probe_counts):
            raise ValueError("probes and probe_counts must have equal length")
        if any(p.shape[0] == 0 for p in probes):
            raise ValueError("probe fingerprint has no samples")
        P = len(probes)
        p_m_max = max((p.shape[0] for p in probes), default=1)
        self.data = np.zeros((P, p_m_max, NCOLS), dtype=np.float64)
        self.lengths = np.empty(P, dtype=np.int64)
        self.counts = np.empty(P, dtype=np.int64)
        for i, (p, c) in enumerate(zip(probes, probe_counts)):
            self.data[i, : p.shape[0]] = p
            self.lengths[i] = p.shape[0]
            self.counts[i] = c

    def __len__(self) -> int:
        return self.data.shape[0]


class _ProbeViews:
    """Broadcast-ready views of one probe fingerprint, built once per call."""

    __slots__ = ("ma", "n_a", "ax", "adx", "ay", "ady", "at", "adt", "a_ext_s")

    def __init__(self, a_data: np.ndarray, n_a: int):
        if a_data.shape[0] == 0:
            raise ValueError("probe fingerprint has no samples")
        self.ma = a_data.shape[0]
        self.n_a = n_a
        self.ax = a_data[:, X][None, :, None]
        self.adx = a_data[:, DX][None, :, None]
        self.ay = a_data[:, Y][None, :, None]
        self.ady = a_data[:, DY][None, :, None]
        self.at = a_data[:, T][None, :, None]
        self.adt = a_data[:, DT][None, :, None]
        self.a_ext_s = self.adx + self.ady


def _chunk_efforts(
    probe: _ProbeViews,
    b: np.ndarray,
    mask: np.ndarray,
    len_b: np.ndarray,
    n_b: np.ndarray,
    pad_width: int,
    config: StretchConfig,
) -> np.ndarray:
    """Eq. 10 efforts of one probe against one gathered target chunk.

    ``b``/``mask`` may be sliced to the chunk's own maximum sample count:
    every per-pair value is an elementwise function of valid cells only,
    and both directional means are summed over a zero-padded
    ``(C, pad_width)`` array whose width is fixed by the *store* (not the
    chunk), so results are bitwise independent of chunk composition.
    ``pad_width`` must be ``max(ma, m_max)`` of the packed store;
    NumPy's pairwise summation groups operands by array length, so the
    shared width keeps the kernel bitwise symmetric under a probe/target
    role swap.
    """
    ma = probe.ma
    w_a = (probe.n_a / (probe.n_a + n_b))[:, None, None]
    w_b = (n_b / (probe.n_a + n_b))[:, None, None]

    bx = b[:, :, X][:, None, :]
    bdx = b[:, :, DX][:, None, :]
    by = b[:, :, Y][:, None, :]
    bdy = b[:, :, DY][:, None, :]
    bt = b[:, :, T][:, None, :]
    bdt = b[:, :, DT][:, None, :]

    ux = np.maximum(probe.ax + probe.adx, bx + bdx) - np.minimum(probe.ax, bx)
    uy = np.maximum(probe.ay + probe.ady, by + bdy) - np.minimum(probe.ay, by)
    ut = np.maximum(probe.at + probe.adt, bt + bdt) - np.minimum(probe.at, bt)

    # Clamped at zero against floating-point cancellation noise.
    # The weighted own-extent terms are summed before subtracting so
    # the expression is bitwise symmetric under a probe/target role
    # swap (addition commutes exactly; chained subtraction doesn't).
    raw_s = np.maximum((ux + uy) - (w_a * probe.a_ext_s + w_b * (bdx + bdy)), 0.0)
    raw_t = np.maximum(ut - (w_a * probe.adt + w_b * bdt), 0.0)

    delta = config.w_sigma * np.minimum(raw_s / config.phi_max_sigma_m, 1.0)
    delta += config.w_tau * np.minimum(raw_t / config.phi_max_tau_min, 1.0)

    # Mask out padding: invalid target samples must never be matched.
    delta = np.where(mask[:, None, :], delta, np.inf)

    # Case ma > mb: for each probe sample, nearest target sample.
    per_a = delta.min(axis=2)  # (C, ma)
    padded = np.zeros((per_a.shape[0], pad_width), dtype=per_a.dtype)
    padded[:, : per_a.shape[1]] = per_a
    mean_long_a = padded.sum(axis=1) / ma

    # Case mb > ma: for each *valid* target sample, nearest probe sample.
    per_b = delta.min(axis=1)  # (C, W)
    per_b = np.where(mask, per_b, 0.0)
    padded = np.zeros((per_b.shape[0], pad_width), dtype=per_b.dtype)
    padded[:, : per_b.shape[1]] = per_b
    mean_long_b = padded.sum(axis=1) / len_b

    # Equal lengths: average both directions (symmetric tie rule,
    # see repro.core.stretch.fingerprint_stretch).
    return np.where(
        ma > len_b,
        mean_long_a,
        np.where(len_b > ma, mean_long_b, (mean_long_a + mean_long_b) / 2.0),
    )


def _length_sorted(packed: PaddedFingerprints, indices: np.ndarray) -> np.ndarray:
    """Positions of ``indices`` in ascending target-length order.

    Grouping similar-length targets into the same chunk lets the bulk
    kernel slice its broadcast tensors to each chunk's own maximum
    length instead of the store-wide padding, without changing a single
    output bit (per-pair values are chunk-independent, see
    :func:`_chunk_efforts`).
    """
    if indices.shape[0] <= 1:
        return np.arange(indices.shape[0])
    return np.argsort(packed.lengths[indices], kind="stable")


def one_vs_all(
    a_data: np.ndarray,
    n_a: int,
    packed: PaddedFingerprints,
    config: StretchConfig = StretchConfig(),
    indices: Optional[np.ndarray] = None,
    chunk: int = DEFAULT_CHUNK,
) -> np.ndarray:
    """Fingerprint stretch efforts (Eq. 10) from one fingerprint to many.

    Parameters
    ----------
    a_data:
        ``(ma, 6)`` sample array of the probe fingerprint.
    n_a:
        Subscribers hidden in the probe fingerprint.
    packed:
        Target fingerprints, packed.
    indices:
        Optional subset of target indices to evaluate; defaults to all.
    chunk:
        Targets per broadcast chunk.

    Returns
    -------
    Float64 array of ``Delta_ab`` values, aligned with ``indices``.
    """
    probe = _ProbeViews(a_data, n_a)
    if indices is None:
        indices = np.arange(len(packed))
    indices = np.asarray(indices, dtype=np.int64)
    out = np.empty(indices.shape[0], dtype=np.float64)
    pad_width = max(probe.ma, packed.data.shape[1])

    order = _length_sorted(packed, indices)
    for start in range(0, indices.shape[0], chunk):
        pos = order[start : start + chunk]
        sel = indices[pos]
        len_b = packed.lengths[sel]
        width = int(len_b.max())
        b = packed.data[sel, :width]
        mask = packed.mask[sel, :width]
        n_b = packed.counts[sel].astype(np.float64)
        out[pos] = _chunk_efforts(probe, b, mask, len_b, n_b, pad_width, config)
    return out


def many_vs_all(
    probes: Sequence[np.ndarray],
    probe_counts: Sequence[int],
    packed: PaddedFingerprints,
    config: StretchConfig = StretchConfig(),
    indices: Optional[np.ndarray] = None,
    chunk: int = DEFAULT_CHUNK,
) -> np.ndarray:
    """Eq. 10 efforts from several probes to one shared target set.

    The multi-probe face of :func:`one_vs_all`: target chunks are
    gathered from the padded store once and reused across all probes,
    so ``P`` probes pay one gather instead of ``P``.  Returns a
    ``(P, len(indices))`` float64 matrix whose row ``p`` is bitwise
    equal to ``one_vs_all(probes[p], ...)`` on the same targets.
    """
    if len(probes) != len(probe_counts):
        raise ValueError("probes and probe_counts must have equal length")
    if indices is None:
        indices = np.arange(len(packed))
    indices = np.asarray(indices, dtype=np.int64)
    views = [_ProbeViews(p, int(n)) for p, n in zip(probes, probe_counts)]
    out = np.empty((len(views), indices.shape[0]), dtype=np.float64)
    m_max = packed.data.shape[1]

    order = _length_sorted(packed, indices)
    for start in range(0, indices.shape[0], chunk):
        pos = order[start : start + chunk]
        sel = indices[pos]
        len_b = packed.lengths[sel]
        width = int(len_b.max())
        b = packed.data[sel, :width]
        mask = packed.mask[sel, :width]
        n_b = packed.counts[sel].astype(np.float64)
        for row, probe in enumerate(views):
            out[row, pos] = _chunk_efforts(
                probe, b, mask, len_b, n_b, max(probe.ma, m_max), config
            )
    return out


def many_vs_some(
    probes: Sequence[np.ndarray],
    probe_counts: Sequence[int],
    packed: PaddedFingerprints,
    targets_list: Sequence[np.ndarray],
    config: StretchConfig = StretchConfig(),
    chunk: int = DEFAULT_CHUNK,
) -> List[np.ndarray]:
    """Ragged multi-probe dispatch: probe ``p`` vs its own target subset.

    The union of all subsets is gathered from the padded store once;
    each probe then addresses its own targets inside that (much
    smaller) snapshot.  Entry ``p`` of the result is bitwise equal to
    ``one_vs_all(probes[p], ..., indices=targets_list[p])`` — per-pair
    values are chunk- and batch-composition-independent (see
    :func:`_chunk_efforts`).
    """
    if len(probes) != len(probe_counts) or len(probes) != len(targets_list):
        raise ValueError("probes, probe_counts and targets_list must align")
    targets_list = [np.asarray(t, dtype=np.int64) for t in targets_list]
    nonempty = [t for t in targets_list if t.size]
    if not nonempty:
        return [np.empty(0, dtype=np.float64) for _ in targets_list]
    union = np.unique(np.concatenate(nonempty))
    w_u = int(packed.lengths[union].max())
    b_u = packed.data[union, :w_u]
    mask_u = packed.mask[union, :w_u]
    len_u = packed.lengths[union]
    n_u = packed.counts[union].astype(np.float64)
    m_max = packed.data.shape[1]

    outs = []
    for p_data, p_count, targets in zip(probes, probe_counts, targets_list):
        if targets.size == 0:
            outs.append(np.empty(0, dtype=np.float64))
            continue
        probe = _ProbeViews(p_data, int(p_count))
        pad_width = max(probe.ma, m_max)
        pos_u = np.searchsorted(union, targets)
        out = np.empty(targets.shape[0], dtype=np.float64)
        order = (
            np.argsort(len_u[pos_u], kind="stable")
            if targets.shape[0] > 1
            else np.arange(targets.shape[0])
        )
        for start in range(0, targets.shape[0], chunk):
            pos = order[start : start + chunk]
            sel = pos_u[pos]
            len_b = len_u[sel]
            width = int(len_b.max())
            out[pos] = _chunk_efforts(
                probe, b_u[sel, :width], mask_u[sel, :width],
                len_b, n_u[sel], pad_width, config,
            )
        outs.append(out)
    return outs


def pairwise_matrix(
    fingerprints: Sequence[Fingerprint],
    config: StretchConfig = StretchConfig(),
    chunk: int = DEFAULT_CHUNK,
) -> np.ndarray:
    """Full symmetric ``Delta_ab`` matrix for a fingerprint collection.

    The diagonal is set to ``+inf`` so that row-wise minima directly give
    nearest-neighbour efforts.
    """
    fps = list(fingerprints)
    packed = PaddedFingerprints(fps)
    n = len(fps)
    mat = np.full((n, n), np.inf, dtype=np.float64)
    for i, fp in enumerate(fps):
        if i + 1 >= n:
            break
        targets = np.arange(i + 1, n)
        vals = one_vs_all(fp.data, fp.count, packed, config, indices=targets, chunk=chunk)
        mat[i, i + 1 :] = vals
        mat[i + 1 :, i] = vals
    return mat


def k_nearest(
    matrix: np.ndarray,
    k_minus_1: int,
) -> tuple:
    """Indices and efforts of each row's ``k-1`` nearest fingerprints.

    Parameters
    ----------
    matrix:
        Symmetric ``Delta`` matrix with ``+inf`` diagonal.
    k_minus_1:
        Crowd size minus one (the ``k-1`` of Eq. 11).

    Returns
    -------
    ``(indices, efforts)`` with shapes ``(n, k-1)``; each row's entries
    are sorted by increasing effort.
    """
    n = matrix.shape[0]
    if k_minus_1 < 1:
        raise ValueError(f"k-1 must be at least 1, got {k_minus_1}")
    if k_minus_1 > n - 1:
        raise ValueError(f"k-1={k_minus_1} exceeds available neighbours ({n - 1})")
    part = np.argpartition(matrix, k_minus_1 - 1, axis=1)[:, :k_minus_1]
    efforts = np.take_along_axis(matrix, part, axis=1)
    order = np.argsort(efforts, axis=1, kind="stable")
    return np.take_along_axis(part, order, axis=1), np.take_along_axis(efforts, order, axis=1)
