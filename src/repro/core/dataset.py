"""Fingerprint datasets (databases of movement micro-data).

A dataset is an ordered collection of fingerprints with unique
pseudo-identifiers, plus helpers for the subsetting operations used in
the paper's generality analysis (Section 7.3): time-span restriction and
random user sampling.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.core.fingerprint import Fingerprint
from repro.core.sample import DT, T


class FingerprintDataset:
    """An ordered collection of :class:`Fingerprint` with unique uids."""

    def __init__(self, fingerprints: Iterable[Fingerprint] = (), name: str = "dataset"):
        self.name = str(name)
        self._fps: List[Fingerprint] = []
        self._index: Dict[str, int] = {}
        for fp in fingerprints:
            self.add(fp)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, fp: Fingerprint) -> None:
        """Append a fingerprint; uids must be unique within the dataset."""
        if fp.uid in self._index:
            raise ValueError(f"duplicate uid {fp.uid!r} in dataset {self.name!r}")
        self._index[fp.uid] = len(self._fps)
        self._fps.append(fp)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._fps)

    def __iter__(self) -> Iterator[Fingerprint]:
        return iter(self._fps)

    def __getitem__(self, key) -> Fingerprint:
        if isinstance(key, str):
            return self._fps[self._index[key]]
        return self._fps[key]

    def __contains__(self, uid: str) -> bool:
        return uid in self._index

    def __repr__(self) -> str:
        return (
            f"FingerprintDataset(name={self.name!r}, users={self.n_users}, "
            f"fingerprints={len(self)}, samples={self.n_samples})"
        )

    # ------------------------------------------------------------------
    # Aggregate properties
    # ------------------------------------------------------------------
    @property
    def uids(self) -> List[str]:
        """Pseudo-identifiers of all fingerprints, in insertion order."""
        return [fp.uid for fp in self._fps]

    @property
    def n_users(self) -> int:
        """Total subscribers represented (sum of group counts)."""
        return sum(fp.count for fp in self._fps)

    @property
    def n_samples(self) -> int:
        """Total number of samples across all fingerprints."""
        return sum(fp.m for fp in self._fps)

    @property
    def mean_fingerprint_length(self) -> float:
        """Average samples per fingerprint (the ``n-bar`` of Section 6.3)."""
        if not self._fps:
            return 0.0
        return self.n_samples / len(self._fps)

    def time_extent(self) -> tuple:
        """``(t_min, t_max)`` covering every sample interval, in minutes."""
        if not self._fps or all(fp.m == 0 for fp in self._fps):
            return (0.0, 0.0)
        t_min = min(float(fp.data[0, T]) for fp in self._fps if fp.m)
        t_max = max(float((fp.data[:, T] + fp.data[:, DT]).max()) for fp in self._fps if fp.m)
        return (t_min, t_max)

    # ------------------------------------------------------------------
    # Subsetting (paper Section 7.3)
    # ------------------------------------------------------------------
    def restrict_timespan(self, days: float, name: Optional[str] = None) -> "FingerprintDataset":
        """Dataset restricted to the first ``days`` days of the recording.

        Fingerprints left with no samples are dropped, mirroring the
        timespan analysis of Fig. 10.
        """
        if days <= 0:
            raise ValueError(f"days must be positive, got {days}")
        t0 = self.time_extent()[0]
        horizon = t0 + days * 24.0 * 60.0
        out = FingerprintDataset(name=name or f"{self.name}-{days:g}d")
        for fp in self._fps:
            sub = fp.restrict_time(t0, horizon)
            if sub.m > 0:
                out.add(sub)
        return out

    def sample_users(
        self,
        fraction: float,
        rng: np.random.Generator,
        name: Optional[str] = None,
    ) -> "FingerprintDataset":
        """Random subset retaining ``fraction`` of the fingerprints.

        Mirrors the dataset-size analysis of Fig. 11.  At least one
        fingerprint is always retained.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        n_keep = max(1, int(round(fraction * len(self._fps))))
        idx = rng.choice(len(self._fps), size=n_keep, replace=False)
        out = FingerprintDataset(name=name or f"{self.name}-{int(fraction * 100)}pct")
        for i in sorted(idx):
            out.add(self._fps[int(i)])
        return out

    # ------------------------------------------------------------------
    # Anonymity auditing
    # ------------------------------------------------------------------
    def anonymity_histogram(self) -> Dict[int, int]:
        """Map anonymity-set size -> number of subscribers in sets of that size.

        Expands each published fingerprint back to per-subscriber records
        (one per group member) and groups identical traces: the size of a
        trace's group is the anonymity-set size of each of its members.
        """
        counts: Dict[bytes, int] = {}
        for fp in self._fps:
            key = fp.trace_key()
            counts[key] = counts.get(key, 0) + fp.count
        hist: Dict[int, int] = {}
        for size in counts.values():
            hist[size] = hist.get(size, 0) + size
        return hist

    def min_anonymity(self) -> int:
        """Smallest anonymity-set size over all subscribers (0 if empty)."""
        hist = self.anonymity_histogram()
        if not hist:
            return 0
        return min(hist)

    def is_k_anonymous(self, k: int) -> bool:
        """Whether every subscriber is hidden in a crowd of at least ``k``."""
        if len(self) == 0:
            return True
        return self.min_anonymity() >= k
