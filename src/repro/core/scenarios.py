"""The workload scenario registry.

A *scenario* names one reproducible workload — a preset dataset at a
given scale, anonymity level and (optionally) a suite of experiments —
so that experiments, the CLIs and the benchmark suite all speak about
the same workloads instead of each hard-coding its own
``(preset, n_users, days, seed)`` tuples.  Declaring a new workload
here makes it available uniformly:

* ``glove-repro --scenario NAME`` runs the experiment suite at the
  scenario's scale (``--list`` enumerates the registry);
* ``glove generate NAME -o out.csv`` synthesizes the scenario's
  dataset (scenario names extend the preset names);
* ``benchmarks/conftest.py`` keys its BENCH_glove.json records by
  scenario, so unchanged scenarios become artifact-store cache hits.

New scenarios register through :func:`register_scenario`, mirroring the
compute-backend registry of :mod:`repro.core.engine`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class Scenario:
    """One named, fully reproducible workload.

    Attributes
    ----------
    name:
        Registry key (also accepted by ``glove generate``).
    preset:
        Dataset preset from :data:`repro.cdr.datasets.PRESETS`.
    n_users, days, seed:
        Scale of the synthetic population.
    k:
        Anonymity level the scenario's GLOVE runs target.
    experiments:
        For suite scenarios: the ``glove-repro`` experiment names the
        scenario runs (empty for pure dataset scenarios).
    stream:
        For streaming scenarios: keyword arguments of
        :class:`repro.stream.windows.StreamConfig` (``window_min``,
        ``slide_min``, ``max_lag_min``, ...) describing how the
        scenario's dataset is replayed and windowed; ``None`` for
        batch scenarios.  Accepted as any mapping but stored as a
        sorted tuple of pairs — immutable like the sibling
        ``experiments`` field — so registry entries and ``scaled()``
        copies can never be mutated through a shared dict; kept
        untyped data (not a config object) so :mod:`repro.core` never
        imports the streaming tier.
    method:
        The anonymization technique the scenario evaluates — a name
        from the :mod:`repro.core.anonymizer` registry.  Experiments
        that accept a ``method`` parameter (utility, uniqueness) run
        against it when the scenario drives ``glove-repro``.
    method_options:
        Extra keyword arguments of the method's config factory (e.g.
        ``{"delta_m": 2000.0}`` for ``w4m-lc``); stored as a sorted
        tuple of pairs like ``stream``.
    description:
        One line shown by ``glove-repro --list``.
    """

    name: str
    preset: str
    n_users: int
    days: int
    seed: int = 0
    k: int = 2
    experiments: Tuple[str, ...] = ()
    stream: Optional[Mapping[str, float]] = None
    method: str = "glove"
    method_options: Optional[Mapping[str, object]] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.n_users < 1:
            raise ValueError(f"n_users must be positive, got {self.n_users}")
        if self.days < 1:
            raise ValueError(f"days must be positive, got {self.days}")
        if self.k < 2:
            raise ValueError(f"k must be at least 2, got {self.k}")
        if self.stream is not None:
            object.__setattr__(self, "stream", tuple(sorted(dict(self.stream).items())))
        from repro.core.anonymizer import available_anonymizers

        if self.method not in available_anonymizers():
            raise ValueError(
                f"unknown anonymizer {self.method!r}; registered: "
                f"{', '.join(available_anonymizers())}"
            )
        if self.method_options is not None:
            object.__setattr__(
                self, "method_options", tuple(sorted(dict(self.method_options).items()))
            )

    def scaled(self, **overrides) -> "Scenario":
        """A copy with some fields overridden (e.g. env-driven scale)."""
        return replace(self, **overrides)

    def key_params(self) -> Dict[str, object]:
        """The scenario's contribution to an artifact key."""
        return {
            "preset": self.preset,
            "n_users": self.n_users,
            "days": self.days,
            "seed": self.seed,
            "k": self.k,
            "experiments": list(self.experiments),
            "stream": dict(self.stream) if self.stream is not None else None,
            "method": self.method,
            "method_options": (
                dict(self.method_options) if self.method_options is not None else None
            ),
        }

    def anonymizer_config(self):
        """The scenario's method config at the scenario's ``k``.

        Built through the method's registered factory with
        ``method_options`` as keyword overrides.
        """
        from repro.core.anonymizer import get_anonymizer

        options = dict(self.method_options) if self.method_options is not None else {}
        return get_anonymizer(self.method).make_config(k=self.k, **options)

    def stream_config(self):
        """The scenario's :class:`repro.stream.windows.StreamConfig`.

        Raises ``ValueError`` for batch scenarios (no ``stream`` block).
        """
        if self.stream is None:
            raise ValueError(f"scenario {self.name!r} has no streaming parameters")
        from repro.stream.windows import StreamConfig

        return StreamConfig(**dict(self.stream))

    def synthesize(self, pipeline=None):
        """The scenario's dataset through a pipeline (default: process-wide)."""
        from repro.core.pipeline import get_default_pipeline

        pipeline = pipeline if pipeline is not None else get_default_pipeline()
        return pipeline.dataset(
            self.preset, n_users=self.n_users, days=self.days, seed=self.seed
        )


_SCENARIOS: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, overwrite: bool = False) -> Scenario:
    """Register a scenario under its name; returns it for chaining."""
    if not overwrite and scenario.name in _SCENARIOS:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    _SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; registered: {', '.join(available_scenarios())}"
        ) from None


def available_scenarios() -> List[str]:
    """Registered scenario names, sorted."""
    return sorted(_SCENARIOS)


# ----------------------------------------------------------------------
# Built-in scenarios
# ----------------------------------------------------------------------
register_scenario(Scenario(
    name="smoke",
    preset="synth-civ",
    n_users=30,
    days=2,
    seed=4,
    description="tiny end-to-end workload for CI smoke tests",
))
register_scenario(Scenario(
    name="default",
    preset="synth-civ",
    n_users=150,
    days=5,
    description="the glove-repro default scale (laptop-minutes)",
))
register_scenario(Scenario(
    name="bench",
    preset="synth-civ",
    n_users=120,
    days=4,
    description="benchmark-suite scale (REPRO_BENCH_USERS/DAYS env-scaled)",
))
register_scenario(Scenario(
    name="glove-500",
    preset="synth-civ",
    n_users=500,
    days=2,
    description="seeded 500-fingerprint hot-loop timing (BENCH_glove.json)",
))
register_scenario(Scenario(
    name="large-n",
    preset="synth-civ",
    n_users=10_500,
    days=2,
    description="10k+-fingerprint sharded-tier audit (BENCH_glove.json)",
))
register_scenario(Scenario(
    name="suite",
    preset="synth-civ",
    n_users=60,
    days=2,
    experiments=("fig3", "fig8", "table2"),
    description="repeated-suite caching scenario (BENCH suite_cached row)",
))
register_scenario(Scenario(
    name="stream-smoke",
    preset="synth-civ",
    n_users=30,
    days=2,
    seed=4,
    stream={"window_min": 720.0, "max_lag_min": 60.0},
    description="tiny streaming workload, 12 h tumbling windows (CI stream-smoke)",
))
register_scenario(Scenario(
    name="stream-500",
    preset="synth-civ",
    n_users=500,
    days=2,
    stream={"window_min": 720.0, "max_lag_min": 30.0},
    description="500-user streaming throughput scenario (BENCH stream row)",
))
register_scenario(Scenario(
    name="baselines-smoke",
    preset="synth-civ",
    n_users=24,
    days=2,
    seed=4,
    experiments=("table2",),
    description="tiny W4M-vs-GLOVE comparison (CI baselines-smoke, BENCH baselines row)",
))
register_scenario(Scenario(
    name="w4m-attack",
    preset="synth-civ",
    n_users=36,
    days=2,
    seed=4,
    method="w4m-lc",
    method_options={"delta_m": 2_000.0, "trash_fraction": 0.10},
    experiments=("attacks", "utility"),
    description="attack/utility evaluation pointed at the W4M-LC baseline",
))
