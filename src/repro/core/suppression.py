"""Sample suppression (paper Section 7.1).

Specialized generalization occasionally has to stretch a sample very far
— those are exactly the long-tail, hard-to-anonymize samples of Section
5.3.  Suppression discards generalized samples whose spatial extent or
temporal extent exceeds configured thresholds, trading a small fraction
of discarded samples for a large gain in average accuracy (Fig. 9 and
the GLOVE columns of Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.config import SuppressionConfig
from repro.core.dataset import FingerprintDataset
from repro.core.fingerprint import Fingerprint
from repro.core.sample import DT, DX, DY


@dataclass(frozen=True)
class SuppressionStats:
    """Outcome of a suppression pass.

    Attributes
    ----------
    total_samples:
        Samples present before suppression.
    discarded_samples:
        Samples removed because they exceeded a threshold.
    discarded_fingerprints:
        Fingerprints dropped because *all* their samples were removed.
    """

    total_samples: int
    discarded_samples: int
    discarded_fingerprints: int

    @property
    def discarded_fraction(self) -> float:
        """Fraction of samples discarded (the y-axis of Fig. 9)."""
        if self.total_samples == 0:
            return 0.0
        return self.discarded_samples / self.total_samples


def suppression_mask(data: np.ndarray, config: SuppressionConfig) -> np.ndarray:
    """Boolean mask of samples that *survive* suppression.

    A sample is discarded when ``max(dx, dy)`` exceeds the spatial
    threshold or ``dt`` exceeds the temporal threshold.
    """
    keep = np.ones(data.shape[0], dtype=bool)
    if config.spatial_threshold_m is not None:
        keep &= np.maximum(data[:, DX], data[:, DY]) <= config.spatial_threshold_m
    if config.temporal_threshold_min is not None:
        keep &= data[:, DT] <= config.temporal_threshold_min
    return keep


def _least_stretched(data: np.ndarray, config: SuppressionConfig) -> int:
    """Index of the sample with the smallest normalized stretch."""
    badness = np.zeros(data.shape[0])
    if config.spatial_threshold_m is not None:
        badness += np.maximum(data[:, DX], data[:, DY]) / config.spatial_threshold_m
    if config.temporal_threshold_min is not None:
        badness += data[:, DT] / config.temporal_threshold_min
    return int(badness.argmin())


def suppress_fingerprint(fp: Fingerprint, config: SuppressionConfig) -> Fingerprint:
    """Copy of ``fp`` without over-stretched samples.

    With ``keep_at_least_one`` (the default) the result is never empty:
    if all samples exceed the thresholds, the least-stretched survives.
    """
    if not config.enabled:
        return fp
    keep = suppression_mask(fp.data, config)
    if keep.all():
        return fp
    if not keep.any() and config.keep_at_least_one:
        keep[_least_stretched(fp.data, config)] = True
    return fp.with_samples(fp.data[keep])


def suppress_dataset(
    dataset: FingerprintDataset, config: SuppressionConfig
) -> Tuple[FingerprintDataset, SuppressionStats]:
    """Apply suppression to every fingerprint of a dataset.

    Fingerprints whose samples are all suppressed are dropped entirely
    (counted as discarded fingerprints).  Returns the filtered dataset
    and the suppression statistics.
    """
    out = FingerprintDataset(name=f"{dataset.name}-suppressed")
    total = 0
    discarded = 0
    dropped_fps = 0
    for fp in dataset:
        total += fp.m
        if not config.enabled:
            out.add(fp)
            continue
        kept = suppress_fingerprint(fp, config)
        discarded += fp.m - kept.m
        if kept.m == 0:
            dropped_fps += 1
            continue
        out.add(kept)
    return out, SuppressionStats(
        total_samples=total,
        discarded_samples=discarded,
        discarded_fingerprints=dropped_fps,
    )
