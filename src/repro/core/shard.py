"""Sharded GLOVE: partition, anonymize concurrently, repair boundaries.

The paper reaches millions of subscribers by offloading the
O(|M|^2 n-bar^2) Eq. 10 workload to a GPU (Section 6.3).  The pruned
greedy loop of :mod:`repro.core.glove` removed the dense-matrix memory
wall, but one in-memory population still pays the full quadratic merge
search.  This module adds the scale-out tier anticipated by DESIGN.md
D4's ``register_backend()`` extension point:

1. **Partition** the input population into shards — by activity-time
   locality (fingerprints whose recording midpoints are close land in
   the same shard) or by a deterministic uid hash;
2. **Anonymize** every shard independently with the pruned greedy loop
   of Alg. 1, concurrently across a process pool — the quadratic cost
   drops from O(n^2) to O(s * (n/s)^2) = O(n^2 / s) exact-kernel work;
3. **Repair the boundaries**: the per-shard greedy loops can each leave
   at most one non-anonymous fingerprint behind (the Alg. 1 loop stops
   below two pending), so the cross-shard pass folds every such
   leftover into the globally nearest finished group, restoring the
   paper's "k-anonymity by design" guarantee with extra stretch
   bounded by one extra merge per shard.

Selected as the ``sharded`` entry of the engine's backend registry:
kernel-level calls (k-gap matrix builds) delegate to the ``auto``
dispatch, while whole ``glove()`` runs are taken over through
:func:`repro.core.engine.register_glove_driver`.  With one shard the
driver is byte-identical to the unsharded path; invariants live in
DESIGN.md D5 and are enforced by ``tests/core/test_shard.py`` and
``tests/properties/test_k_anonymity.py``.
"""

from __future__ import annotations

import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from math import ceil
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import ComputeConfig, GloveConfig
from repro.core.dataset import FingerprintDataset
from repro.core.engine import (
    AutoBackend,
    StretchEngine,
    _effective_workers,
    get_default_compute,
    register_backend,
    register_glove_driver,
)
from repro.core.fingerprint import Fingerprint
from repro.core.glove import (
    GloveResult,
    GloveStats,
    _fold_leftover,
    _greedy_merge,
    _merge_pair,
    finalize_result,
    glove,
    validate_population,
)
from repro.core.pairwise import PaddedFingerprints, one_vs_all
from repro.core.sample import DT, T

#: Fingerprints per shard the auto rule (``ComputeConfig.shards=None``)
#: aims for: below this scale the per-shard quadratic loop is cheap
#: enough that further splitting only costs utility.
AUTO_SHARD_TARGET = 768

#: Cap on the auto-selected shard count.
AUTO_SHARD_CAP = 32


class ShardedBackend(AutoBackend):
    """Kernel tier of the ``sharded`` backend.

    Bulk kernel calls (k-gap matrix builds, one-vs-all rows) have no
    population to partition, so they delegate to the ``auto`` dispatch;
    the shard-level orchestration lives in :func:`sharded_glove`, which
    the engine routes whole ``glove()`` runs to.
    """

    name = "sharded"


def resolve_shards(compute: ComputeConfig, n: int) -> int:
    """Effective shard count for a population of ``n`` fingerprints.

    An explicit :attr:`~repro.core.config.ComputeConfig.shards` wins
    (clamped to the population size); otherwise one shard per
    :data:`AUTO_SHARD_TARGET` fingerprints, at most
    :data:`AUTO_SHARD_CAP`.
    """
    if compute.shards is not None:
        return max(1, min(compute.shards, n))
    return max(1, min(AUTO_SHARD_CAP, ceil(n / AUTO_SHARD_TARGET)))


def partition_indices(
    fps: Sequence[Fingerprint], shards: int, strategy: str = "time"
) -> List[np.ndarray]:
    """Split a population into at most ``shards`` non-empty index groups.

    ``"time"`` sorts fingerprints by the midpoint of their recording
    activity and cuts contiguous, balanced runs, so each shard holds
    temporally local fingerprints — the cheapest merge candidates under
    Eq. 10's temporal term.  ``"hash"`` buckets by a deterministic CRC
    of the uid: locality-free, but stable under any reordering or
    subsetting of the input (the fallback when activity times are
    degenerate or adversarial).  Both rules are deterministic; empty
    hash buckets are dropped.
    """
    n = len(fps)
    shards = max(1, min(shards, n))
    if shards == 1:
        return [np.arange(n, dtype=np.int64)]
    if strategy == "time":
        mids = np.array(
            [
                0.5 * (float(fp.data[0, T]) + float((fp.data[:, T] + fp.data[:, DT]).max()))
                for fp in fps
            ]
        )
        order = np.argsort(mids, kind="stable").astype(np.int64)
        return [part for part in np.array_split(order, shards) if part.size]
    if strategy == "hash":
        buckets = np.array(
            [zlib.crc32(fp.uid.encode("utf-8")) % shards for fp in fps], dtype=np.int64
        )
        return [
            np.flatnonzero(buckets == b).astype(np.int64)
            for b in range(shards)
            if (buckets == b).any()
        ]
    raise ValueError(f"unknown shard strategy {strategy!r}")


def _shard_task(args) -> Tuple[List[Fingerprint], Optional[Fingerprint], tuple]:
    """Run the pruned greedy loop on one shard (process-pool safe).

    Returns the finished group fingerprints, the at-most-one
    non-anonymous leftover, and the shard's evaluation counters.
    Leftovers are *not* folded locally — a shard may lack any finished
    group to absorb them; the cross-shard repair pass owns that step.
    """
    fps, config, compute = args
    stats = GloveStats(n_input_fingerprints=len(fps))
    with StretchEngine(fps, stretch=config.stretch, compute=compute) as engine:
        finished, leftover, _ = _greedy_merge(engine, fps, config, stats)
        finished_fps = [engine.store.fps[s] for s in finished]
        leftover_fp = engine.store.fps[leftover] if leftover is not None else None
        crossings, dispatches, batched, bound_pruned = (
            engine.backend.dispatch_counters()
        )
    counters = (
        stats.n_merges,
        stats.n_exact_evaluations,
        stats.n_pruned_evaluations,
        crossings,
        dispatches,
        batched,
        bound_pruned,
    )
    return finished_fps, leftover_fp, counters


def _boundary_repair(
    finished: List[Fingerprint],
    leftovers: List[Fingerprint],
    config: GloveConfig,
    compute: ComputeConfig,
    stats: GloveStats,
) -> None:
    """Re-merge per-shard leftovers so global k-anonymity holds.

    Each leftover (one non-anonymous fingerprint at most per shard) is
    folded into the globally nearest finished group under the same
    Eq. 10 effort, mirroring the unsharded leftover rule (DESIGN.md D2)
    across shard boundaries.  When *no* shard produced a finished group
    (every shard's subscriber total was below ``k``), the leftovers are
    greedy-merged with each other instead — the input validation
    guarantees their combined count reaches ``k``.  Mutates ``finished``
    in place.
    """
    if not leftovers:
        return
    stats.boundary_repaired = len(leftovers)
    if not finished:
        sub = GloveStats(n_input_fingerprints=len(leftovers))
        with StretchEngine(leftovers, stretch=config.stretch, compute=compute) as engine:
            fin, leftover, nn = _greedy_merge(engine, leftovers, config, sub)
            if leftover is not None:
                _fold_leftover(engine, nn, fin, leftover, config, sub)
            finished.extend(engine.store.fps[s] for s in fin)
            crossings, dispatches, batched, bound_pruned = (
                engine.backend.dispatch_counters()
            )
        stats.n_merges += sub.n_merges
        stats.n_exact_evaluations += sub.n_exact_evaluations
        stats.n_pruned_evaluations += sub.n_pruned_evaluations
        stats.n_boundary_crossings += crossings
        stats.n_probe_dispatches += dispatches
        stats.n_batched_probes += batched
        stats.n_bound_pruned += bound_pruned
        stats.leftover_merged = stats.leftover_merged or sub.leftover_merged
        return
    packed = PaddedFingerprints(finished)
    for fp in leftovers:
        efforts = one_vs_all(fp.data, fp.count, packed, config.stretch, chunk=compute.chunk)
        stats.n_exact_evaluations += efforts.shape[0]
        stats.n_boundary_crossings += 1
        stats.n_probe_dispatches += 1
        target = int(efforts.argmin())
        merged = _merge_pair(fp, finished[target], config)
        finished[target] = merged
        # In-place row refresh: a merge product never outgrows its
        # shorter parent, so it always fits the absorbing group's slot.
        m = merged.m
        packed.data[target, :m] = merged.data
        packed.data[target, m:] = 0.0
        packed.mask[target, :m] = True
        packed.mask[target, m:] = False
        packed.lengths[target] = m
        packed.counts[target] = merged.count
        stats.n_merges += 1
        stats.leftover_merged = True


def sharded_glove(
    dataset: FingerprintDataset,
    config: GloveConfig = GloveConfig(),
    compute: Optional[ComputeConfig] = None,
) -> GloveResult:
    """k-anonymize a dataset with the sharded GLOVE tier.

    The glove driver of the ``sharded`` backend (normally reached via
    ``glove(dataset, config, ComputeConfig(backend="sharded"))``):
    partitions the population per
    :attr:`~repro.core.config.ComputeConfig.shard_strategy`, anonymizes
    the shards concurrently (shard-level process pool of
    :attr:`~repro.core.config.ComputeConfig.workers`), and repairs the
    shard boundaries.  With an effective shard count of 1 the result is
    byte-identical to the unsharded ``numpy`` path; with more shards
    every output group still hides at least ``config.k`` subscribers
    and covers every input exactly once, at a bounded utility cost
    (DESIGN.md D5).
    """
    compute = compute if compute is not None else get_default_compute()
    fps = list(dataset)
    k = config.k
    validate_population(fps, k)
    # Inside shards the kernels run the in-process inline tier — the
    # compiled kernels when an accelerated binding exists, the NumPy
    # reference otherwise (byte-identical either way) — with a single
    # worker: the concurrency budget is spent at the shard level, not
    # nested pools.
    inner = replace(compute, backend="auto", shards=None, workers=1)

    n_shards = resolve_shards(compute, len(fps))
    if n_shards == 1:
        # Single shard: delegate to the unsharded path itself (inner
        # forces workers=1, so no pool re-dispatch) — the golden
        # byte-identity guarantee holds by construction.
        return glove(dataset, config, inner)

    stats = GloveStats(n_input_fingerprints=len(fps))
    name = f"{dataset.name}-glove-k{k}"
    parts = partition_indices(fps, n_shards, compute.shard_strategy)
    stats.shards_used = len(parts)
    tasks = [([fps[int(i)] for i in part], config, inner) for part in parts]
    workers = min(_effective_workers(compute), len(parts))
    if workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            shard_results = list(pool.map(_shard_task, tasks))
    else:
        shard_results = [_shard_task(task) for task in tasks]

    finished: List[Fingerprint] = []
    leftovers: List[Fingerprint] = []
    for shard_finished, shard_leftover, counters in shard_results:
        finished.extend(shard_finished)
        if shard_leftover is not None:
            leftovers.append(shard_leftover)
        stats.n_merges += counters[0]
        stats.n_exact_evaluations += counters[1]
        stats.n_pruned_evaluations += counters[2]
        stats.n_boundary_crossings += counters[3]
        stats.n_probe_dispatches += counters[4]
        stats.n_batched_probes += counters[5]
        stats.n_bound_pruned += counters[6]

    _boundary_repair(finished, leftovers, config, inner, stats)

    out = FingerprintDataset(name=name)
    for fp in finished:
        out.add(fp)
    stats.n_output_fingerprints = len(out)
    return finalize_result(out, stats, config)


register_backend("sharded", ShardedBackend)
register_glove_driver("sharded", sharded_glove)
