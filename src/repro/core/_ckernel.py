"""System-compiler binding of the stretch kernels (the ``cc`` tier).

:mod:`repro.core.kernels` defines the scalar Eq. 10 kernels once and
binds them to the fastest available tier: ``numba`` when the
``[compiled]`` extra is installed, otherwise — via this module — a
shared library built on demand with the system C compiler and called
through :mod:`ctypes`.  The C text below is a line-for-line
transliteration of the pure-Python kernels (same operation order, same
tie rules, same pairwise summation), compiled with ``-ffp-contract=off``
so no FMA contraction or reassociation can change a result bit.

The build is content-addressed: the shared object is cached under the
artifact root (``default_artifact_dir()/ckernel``) keyed by a digest of
the C source and flags, so each source revision compiles exactly once
per machine.  Every failure mode — no compiler, compile error, load
error, ``REPRO_CC_KERNEL=0`` — degrades to ``LIB = None`` and the
callers fall back to the pure tier.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

from repro.core.artifacts import default_artifact_dir

C_SOURCE = r"""
#include <math.h>
#include <stdint.h>
#include <stdlib.h>

#define NCOLS 6
#define XCOL 0
#define DXCOL 1
#define YCOL 2
#define DYCOL 3
#define TCOL 4
#define DTCOL 5

/* NumPy's pairwise summation: sequential below 8 elements, an
 * 8-accumulator unrolled tree up to the 128-element block size,
 * recursive halving above with the split rounded down to a multiple
 * of 8.  Identical operation order => identical bits. */
static double psum(const double *a, int64_t n)
{
    if (n <= 128) {
        if (n < 8) {
            double res = 0.0;
            for (int64_t i = 0; i < n; i++)
                res += a[i];
            return res;
        }
        double r0 = a[0], r1 = a[1], r2 = a[2], r3 = a[3];
        double r4 = a[4], r5 = a[5], r6 = a[6], r7 = a[7];
        int64_t i = 8;
        for (; i + 8 <= n; i += 8) {
            r0 += a[i];
            r1 += a[i + 1];
            r2 += a[i + 2];
            r3 += a[i + 3];
            r4 += a[i + 4];
            r5 += a[i + 5];
            r6 += a[i + 6];
            r7 += a[i + 7];
        }
        double res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7));
        for (; i < n; i++)
            res += a[i];
        return res;
    }
    int64_t n2 = n / 2;
    n2 -= n2 % 8;
    return psum(a, n2) + psum(a + n2, n - n2);
}

/* One Eq. 10 effort.  Ternaries mirror NumPy's maximum/minimum tie
 * rule (in1 OP in2 ? in1 : in2) so -0.0 never replaces the
 * reference's +0.0.  The inner loop is branchless struct-of-arrays:
 * every per-cell value is an independent elementwise function and the
 * two reductions are exact minima, so the compiler's SIMD
 * vectorization cannot change a bit (FMA contraction is disabled by
 * the build flags).  sa/sb must hold pad_width zeros on entry and are
 * re-zeroed before returning; tb needs 9*m_max scratch doubles for
 * the hoisted per-target-row precomputes and the per-row effort
 * buffer (the row minimum is reduced in a separate scalar pass —
 * keeping the reduction out of the hot loop is what lets the
 * compiler vectorize it under strict IEEE rules). */
static double pair_effort(
    const double *restrict a, int64_t ma, double n_a,
    const double *restrict b, int64_t mb, double n_b,
    double *restrict sa, double *restrict sb, double *restrict tb,
    int64_t t_stride, int64_t pad_width,
    double w_sigma, double w_tau, double phi_sigma, double phi_tau)
{
    double w_a = n_a / (n_a + n_b);
    double w_b = n_b / (n_a + n_b);
    /* The slices are disjoint (mb <= t_stride), so restrict holds. */
    double *restrict t_bx = tb;
    double *restrict t_bhx = tb + t_stride;
    double *restrict t_by = tb + 2 * t_stride;
    double *restrict t_bhy = tb + 3 * t_stride;
    double *restrict t_bt = tb + 4 * t_stride;
    double *restrict t_bht = tb + 5 * t_stride;
    double *restrict t_wbe = tb + 6 * t_stride;
    double *restrict t_wbt = tb + 7 * t_stride;
    double *restrict dbuf = tb + 8 * t_stride;
    for (int64_t i = 0; i < ma; i++)
        sa[i] = INFINITY;
    for (int64_t j = 0; j < mb; j++) {
        const double *br = b + j * NCOLS;
        sb[j] = INFINITY;
        t_bx[j] = br[XCOL];
        t_bhx[j] = br[XCOL] + br[DXCOL];
        t_by[j] = br[YCOL];
        t_bhy[j] = br[YCOL] + br[DYCOL];
        t_bt[j] = br[TCOL];
        t_bht[j] = br[TCOL] + br[DTCOL];
        t_wbe[j] = w_b * (br[DXCOL] + br[DYCOL]);
        t_wbt[j] = w_b * br[DTCOL];
    }
    for (int64_t i = 0; i < ma; i++) {
        const double *ar = a + i * NCOLS;
        double axi = ar[XCOL], ayi = ar[YCOL], ati = ar[TCOL];
        double ahx = axi + ar[DXCOL];
        double ahy = ayi + ar[DYCOL];
        double aht = ati + ar[DTCOL];
        double wa_ext = w_a * (ar[DXCOL] + ar[DYCOL]);
        double wa_t = w_a * ar[DTCOL];
        for (int64_t j = 0; j < mb; j++) {
            double bxj = t_bx[j], bhx = t_bhx[j];
            double byj = t_by[j], bhy = t_bhy[j];
            double btj = t_bt[j], bht = t_bht[j];
            double ux = (ahx > bhx ? ahx : bhx) - (axi < bxj ? axi : bxj);
            double uy = (ahy > bhy ? ahy : bhy) - (ayi < byj ? ayi : byj);
            double ut = (aht > bht ? aht : bht) - (ati < btj ? ati : btj);
            double raw_s = (ux + uy) - (wa_ext + t_wbe[j]);
            raw_s = raw_s > 0.0 ? raw_s : 0.0;
            double raw_t = ut - (wa_t + t_wbt[j]);
            raw_t = raw_t > 0.0 ? raw_t : 0.0;
            double s_term = raw_s / phi_sigma;
            s_term = s_term < 1.0 ? s_term : 1.0;
            double t_term = raw_t / phi_tau;
            t_term = t_term < 1.0 ? t_term : 1.0;
            double d = w_sigma * s_term + w_tau * t_term;
            dbuf[j] = d;
            sb[j] = d < sb[j] ? d : sb[j];
        }
        double row_min = INFINITY;
        for (int64_t j = 0; j < mb; j++)
            row_min = dbuf[j] < row_min ? dbuf[j] : row_min;
        sa[i] = row_min;
    }
    double mean_a = psum(sa, pad_width) / (double)ma;
    double mean_b = psum(sb, pad_width) / (double)mb;
    for (int64_t i = 0; i < ma; i++)
        sa[i] = 0.0;
    for (int64_t j = 0; j < mb; j++)
        sb[j] = 0.0;
    if (ma > mb)
        return mean_a;
    if (mb > ma)
        return mean_b;
    return (mean_a + mean_b) / 2.0;
}

int glove_one_vs_all(
    const double *a_data, int64_t ma, double n_a,
    const double *data, int64_t m_max,
    const int64_t *lengths, const int64_t *counts,
    const int64_t *targets, int64_t n_targets,
    double w_sigma, double w_tau, double phi_sigma, double phi_tau,
    double *out)
{
    int64_t pad_width = ma > m_max ? ma : m_max;
    double *sa = calloc((size_t)pad_width, sizeof(double));
    double *sb = calloc((size_t)pad_width, sizeof(double));
    double *tb = malloc((size_t)(9 * m_max) * sizeof(double));
    if (sa == NULL || sb == NULL || tb == NULL) {
        free(sa);
        free(sb);
        free(tb);
        return -1;
    }
    for (int64_t idx = 0; idx < n_targets; idx++) {
        int64_t t = targets[idx];
        out[idx] = pair_effort(
            a_data, ma, n_a,
            data + t * m_max * NCOLS, lengths[t], (double)counts[t],
            sa, sb, tb, m_max, pad_width,
            w_sigma, w_tau, phi_sigma, phi_tau);
    }
    free(sa);
    free(sb);
    free(tb);
    return 0;
}

/* Batched multi-probe entry points: one boundary crossing per probe
 * batch instead of one per probe.  Probes arrive as their own padded
 * (n_probes, p_m_max, NCOLS) tensor (the ProbeBatch layout); each
 * probe's pad width is max(p_len, m_max) exactly as in the per-probe
 * entry, and the scratch vectors are sized to the widest probe and
 * re-zeroed by pair_effort, so every output value is bitwise the
 * per-probe call's.  Scratch is allocated per call, never shared, so
 * concurrent calls from GIL-released threads are safe. */
int glove_many_vs_all(
    const double *p_data, int64_t p_m_max,
    const int64_t *p_lengths, const int64_t *p_counts, int64_t n_probes,
    const double *data, int64_t m_max,
    const int64_t *lengths, const int64_t *counts,
    const int64_t *targets, int64_t n_targets,
    double w_sigma, double w_tau, double phi_sigma, double phi_tau,
    double *out)
{
    int64_t pad_max = p_m_max > m_max ? p_m_max : m_max;
    double *sa = calloc((size_t)pad_max, sizeof(double));
    double *sb = calloc((size_t)pad_max, sizeof(double));
    double *tb = malloc((size_t)(9 * m_max) * sizeof(double));
    if (sa == NULL || sb == NULL || tb == NULL) {
        free(sa);
        free(sb);
        free(tb);
        return -1;
    }
    for (int64_t p = 0; p < n_probes; p++) {
        const double *a = p_data + p * p_m_max * NCOLS;
        int64_t ma = p_lengths[p];
        double n_a = (double)p_counts[p];
        int64_t pad_width = ma > m_max ? ma : m_max;
        double *row = out + p * n_targets;
        for (int64_t idx = 0; idx < n_targets; idx++) {
            int64_t t = targets[idx];
            row[idx] = pair_effort(
                a, ma, n_a,
                data + t * m_max * NCOLS, lengths[t], (double)counts[t],
                sa, sb, tb, m_max, pad_width,
                w_sigma, w_tau, phi_sigma, phi_tau);
        }
    }
    free(sa);
    free(sb);
    free(tb);
    return 0;
}

/* Ragged twin: probe p evaluates flat_targets[offsets[p] ..
 * offsets[p+1]) into the same flat positions of out (CSR layout). */
int glove_many_vs_some(
    const double *p_data, int64_t p_m_max,
    const int64_t *p_lengths, const int64_t *p_counts, int64_t n_probes,
    const double *data, int64_t m_max,
    const int64_t *lengths, const int64_t *counts,
    const int64_t *flat_targets, const int64_t *offsets,
    double w_sigma, double w_tau, double phi_sigma, double phi_tau,
    double *out)
{
    int64_t pad_max = p_m_max > m_max ? p_m_max : m_max;
    double *sa = calloc((size_t)pad_max, sizeof(double));
    double *sb = calloc((size_t)pad_max, sizeof(double));
    double *tb = malloc((size_t)(9 * m_max) * sizeof(double));
    if (sa == NULL || sb == NULL || tb == NULL) {
        free(sa);
        free(sb);
        free(tb);
        return -1;
    }
    for (int64_t p = 0; p < n_probes; p++) {
        const double *a = p_data + p * p_m_max * NCOLS;
        int64_t ma = p_lengths[p];
        double n_a = (double)p_counts[p];
        int64_t pad_width = ma > m_max ? ma : m_max;
        for (int64_t idx = offsets[p]; idx < offsets[p + 1]; idx++) {
            int64_t t = flat_targets[idx];
            out[idx] = pair_effort(
                a, ma, n_a,
                data + t * m_max * NCOLS, lengths[t], (double)counts[t],
                sa, sb, tb, m_max, pad_width,
                w_sigma, w_tau, phi_sigma, phi_tau);
        }
    }
    free(sa);
    free(sb);
    free(tb);
    return 0;
}

/* mat must arrive prefilled with +inf (the diagonal stays that way). */
int glove_pairwise_matrix(
    const double *data, int64_t n, int64_t m_max,
    const int64_t *lengths, const int64_t *counts,
    double w_sigma, double w_tau, double phi_sigma, double phi_tau,
    double *mat)
{
    double *sa = calloc((size_t)m_max, sizeof(double));
    double *sb = calloc((size_t)m_max, sizeof(double));
    double *tb = malloc((size_t)(9 * m_max) * sizeof(double));
    if (sa == NULL || sb == NULL || tb == NULL) {
        free(sa);
        free(sb);
        free(tb);
        return -1;
    }
    for (int64_t i = 0; i + 1 < n; i++) {
        const double *a = data + i * m_max * NCOLS;
        double n_a = (double)counts[i];
        for (int64_t j = i + 1; j < n; j++) {
            double v = pair_effort(
                a, lengths[i], n_a,
                data + j * m_max * NCOLS, lengths[j], (double)counts[j],
                sa, sb, tb, m_max, m_max,
                w_sigma, w_tau, phi_sigma, phi_tau);
            mat[i * n + j] = v;
            mat[j * n + i] = v;
        }
    }
    free(sa);
    free(sb);
    free(tb);
    return 0;
}
"""

#: ``-ffp-contract=off`` forbids FMA contraction — with it off, SIMD
#: add/sub/mul/div/min/max are bit-identical to their scalar forms, so
#: ``-march=native`` vectorization cannot change results; the explicit
#: IEEE flags guard against distributions that alias ``cc`` to
#: something exotic.  ``-march=native`` is dropped on compilers that
#: reject it (the artifact cache is per-machine, so tuning is safe).
CFLAGS = ("-O3", "-fPIC", "-shared", "-ffp-contract=off", "-fno-fast-math")
NATIVE_FLAG = "-march=native"


def _cache_path() -> Path:
    digest = hashlib.sha256(
        (C_SOURCE + " ".join(CFLAGS) + NATIVE_FLAG).encode()
    ).hexdigest()[:16]
    return default_artifact_dir() / "ckernel" / f"stretch_{digest}.so"


def _compile(cache: Path) -> bool:
    compiler = shutil.which(os.environ.get("CC", "cc"))
    if compiler is None:
        return False
    cache.parent.mkdir(parents=True, exist_ok=True)
    # Build in a scratch dir, then rename into place: concurrent
    # processes race benignly (last rename wins, same content).
    with tempfile.TemporaryDirectory(dir=cache.parent) as td:
        src = Path(td) / "stretch.c"
        obj = Path(td) / "stretch.so"
        src.write_text(C_SOURCE)
        for flags in ((*CFLAGS, NATIVE_FLAG), CFLAGS):
            try:
                subprocess.run(
                    [compiler, *flags, str(src), "-o", str(obj)],
                    check=True,
                    capture_output=True,
                    timeout=120,
                )
            except (OSError, subprocess.SubprocessError):
                continue
            os.replace(obj, cache)
            return True
    return False


def _bind(lib: ctypes.CDLL) -> ctypes.CDLL:
    import numpy.ctypeslib as npc

    f64 = npc.ndpointer(dtype="float64", flags="C_CONTIGUOUS")
    i64 = npc.ndpointer(dtype="int64", flags="C_CONTIGUOUS")
    c_i64 = ctypes.c_int64
    c_f64 = ctypes.c_double
    lib.glove_one_vs_all.restype = ctypes.c_int
    lib.glove_one_vs_all.argtypes = [
        f64, c_i64, c_f64,                 # a_data, ma, n_a
        f64, c_i64,                        # data, m_max
        i64, i64,                          # lengths, counts
        i64, c_i64,                        # targets, n_targets
        c_f64, c_f64, c_f64, c_f64,        # w_sigma, w_tau, phis
        f64,                               # out
    ]
    lib.glove_pairwise_matrix.restype = ctypes.c_int
    lib.glove_pairwise_matrix.argtypes = [
        f64, c_i64, c_i64,                 # data, n, m_max
        i64, i64,                          # lengths, counts
        c_f64, c_f64, c_f64, c_f64,        # w_sigma, w_tau, phis
        f64,                               # mat
    ]
    lib.glove_many_vs_all.restype = ctypes.c_int
    lib.glove_many_vs_all.argtypes = [
        f64, c_i64,                        # p_data, p_m_max
        i64, i64, c_i64,                   # p_lengths, p_counts, n_probes
        f64, c_i64,                        # data, m_max
        i64, i64,                          # lengths, counts
        i64, c_i64,                        # targets, n_targets
        c_f64, c_f64, c_f64, c_f64,        # w_sigma, w_tau, phis
        f64,                               # out
    ]
    lib.glove_many_vs_some.restype = ctypes.c_int
    lib.glove_many_vs_some.argtypes = [
        f64, c_i64,                        # p_data, p_m_max
        i64, i64, c_i64,                   # p_lengths, p_counts, n_probes
        f64, c_i64,                        # data, m_max
        i64, i64,                          # lengths, counts
        i64, i64,                          # flat_targets, offsets
        c_f64, c_f64, c_f64, c_f64,        # w_sigma, w_tau, phis
        f64,                               # out
    ]
    return lib


def load() -> Optional[ctypes.CDLL]:
    """Compile (once per source revision) and load the shared library.

    Returns ``None`` — and the callers fall back to the pure tier —
    when the tier is disabled via ``REPRO_CC_KERNEL=0`` or any build
    step fails.
    """
    if os.environ.get("REPRO_CC_KERNEL", "1") == "0":
        return None
    try:
        cache = _cache_path()
        if not cache.exists() and not _compile(cache):
            return None
        return _bind(ctypes.CDLL(str(cache)))
    except (OSError, ValueError):
        return None


LIB = load()
