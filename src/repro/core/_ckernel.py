"""System-compiler binding of the stretch kernels (the ``cc`` tier).

:mod:`repro.core.kernels` defines the scalar Eq. 10 kernels once and
binds them to the fastest available tier: ``numba`` when the
``[compiled]`` extra is installed, otherwise — via this module — a
shared library built on demand with the system C compiler and called
through :mod:`ctypes`.  The C text below is a line-for-line
transliteration of the pure-Python kernels (same operation order, same
tie rules, same pairwise summation), compiled with ``-ffp-contract=off``
so no FMA contraction or reassociation can change a result bit.

The build is content-addressed: the shared object is cached under the
artifact root (``default_artifact_dir()/ckernel``) keyed by a digest of
the C source and flags, so each source revision compiles exactly once
per machine.  Every failure mode — no compiler, compile error, load
error, ``REPRO_CC_KERNEL=0`` — degrades to ``LIB = None`` and the
callers fall back to the pure tier.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

from repro.core.artifacts import default_artifact_dir

C_SOURCE = r"""
#include <math.h>
#include <stdint.h>
#include <stdlib.h>

#define NCOLS 6
#define XCOL 0
#define DXCOL 1
#define YCOL 2
#define DYCOL 3
#define TCOL 4
#define DTCOL 5

/* NumPy's pairwise summation: sequential below 8 elements, an
 * 8-accumulator unrolled tree up to the 128-element block size,
 * recursive halving above with the split rounded down to a multiple
 * of 8.  Identical operation order => identical bits. */
static double psum(const double *a, int64_t n)
{
    if (n <= 128) {
        if (n < 8) {
            double res = 0.0;
            for (int64_t i = 0; i < n; i++)
                res += a[i];
            return res;
        }
        double r0 = a[0], r1 = a[1], r2 = a[2], r3 = a[3];
        double r4 = a[4], r5 = a[5], r6 = a[6], r7 = a[7];
        int64_t i = 8;
        for (; i + 8 <= n; i += 8) {
            r0 += a[i];
            r1 += a[i + 1];
            r2 += a[i + 2];
            r3 += a[i + 3];
            r4 += a[i + 4];
            r5 += a[i + 5];
            r6 += a[i + 6];
            r7 += a[i + 7];
        }
        double res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7));
        for (; i < n; i++)
            res += a[i];
        return res;
    }
    int64_t n2 = n / 2;
    n2 -= n2 % 8;
    return psum(a, n2) + psum(a + n2, n - n2);
}

/* One Eq. 10 effort.  Ternaries mirror NumPy's maximum/minimum tie
 * rule (in1 OP in2 ? in1 : in2) so -0.0 never replaces the
 * reference's +0.0.  The inner loop is branchless struct-of-arrays:
 * every per-cell value is an independent elementwise function and the
 * two reductions are exact minima, so the compiler's SIMD
 * vectorization cannot change a bit (FMA contraction is disabled by
 * the build flags).  sa/sb must hold pad_width zeros on entry and are
 * re-zeroed before returning; tb needs 9*m_max scratch doubles for
 * the hoisted per-target-row precomputes and the per-row effort
 * buffer (the row minimum is reduced in a separate scalar pass —
 * keeping the reduction out of the hot loop is what lets the
 * compiler vectorize it under strict IEEE rules). */
static double pair_effort(
    const double *restrict a, int64_t ma, double n_a,
    const double *restrict b, int64_t mb, double n_b,
    double *restrict sa, double *restrict sb, double *restrict tb,
    int64_t t_stride, int64_t pad_width,
    double w_sigma, double w_tau, double phi_sigma, double phi_tau)
{
    double w_a = n_a / (n_a + n_b);
    double w_b = n_b / (n_a + n_b);
    /* The slices are disjoint (mb <= t_stride), so restrict holds. */
    double *restrict t_bx = tb;
    double *restrict t_bhx = tb + t_stride;
    double *restrict t_by = tb + 2 * t_stride;
    double *restrict t_bhy = tb + 3 * t_stride;
    double *restrict t_bt = tb + 4 * t_stride;
    double *restrict t_bht = tb + 5 * t_stride;
    double *restrict t_wbe = tb + 6 * t_stride;
    double *restrict t_wbt = tb + 7 * t_stride;
    double *restrict dbuf = tb + 8 * t_stride;
    for (int64_t i = 0; i < ma; i++)
        sa[i] = INFINITY;
    for (int64_t j = 0; j < mb; j++) {
        const double *br = b + j * NCOLS;
        sb[j] = INFINITY;
        t_bx[j] = br[XCOL];
        t_bhx[j] = br[XCOL] + br[DXCOL];
        t_by[j] = br[YCOL];
        t_bhy[j] = br[YCOL] + br[DYCOL];
        t_bt[j] = br[TCOL];
        t_bht[j] = br[TCOL] + br[DTCOL];
        t_wbe[j] = w_b * (br[DXCOL] + br[DYCOL]);
        t_wbt[j] = w_b * br[DTCOL];
    }
    for (int64_t i = 0; i < ma; i++) {
        const double *ar = a + i * NCOLS;
        double axi = ar[XCOL], ayi = ar[YCOL], ati = ar[TCOL];
        double ahx = axi + ar[DXCOL];
        double ahy = ayi + ar[DYCOL];
        double aht = ati + ar[DTCOL];
        double wa_ext = w_a * (ar[DXCOL] + ar[DYCOL]);
        double wa_t = w_a * ar[DTCOL];
        for (int64_t j = 0; j < mb; j++) {
            double bxj = t_bx[j], bhx = t_bhx[j];
            double byj = t_by[j], bhy = t_bhy[j];
            double btj = t_bt[j], bht = t_bht[j];
            double ux = (ahx > bhx ? ahx : bhx) - (axi < bxj ? axi : bxj);
            double uy = (ahy > bhy ? ahy : bhy) - (ayi < byj ? ayi : byj);
            double ut = (aht > bht ? aht : bht) - (ati < btj ? ati : btj);
            double raw_s = (ux + uy) - (wa_ext + t_wbe[j]);
            raw_s = raw_s > 0.0 ? raw_s : 0.0;
            double raw_t = ut - (wa_t + t_wbt[j]);
            raw_t = raw_t > 0.0 ? raw_t : 0.0;
            double s_term = raw_s / phi_sigma;
            s_term = s_term < 1.0 ? s_term : 1.0;
            double t_term = raw_t / phi_tau;
            t_term = t_term < 1.0 ? t_term : 1.0;
            double d = w_sigma * s_term + w_tau * t_term;
            dbuf[j] = d;
            sb[j] = d < sb[j] ? d : sb[j];
        }
        double row_min = INFINITY;
        for (int64_t j = 0; j < mb; j++)
            row_min = dbuf[j] < row_min ? dbuf[j] : row_min;
        sa[i] = row_min;
    }
    double mean_a = psum(sa, pad_width) / (double)ma;
    double mean_b = psum(sb, pad_width) / (double)mb;
    for (int64_t i = 0; i < ma; i++)
        sa[i] = 0.0;
    for (int64_t j = 0; j < mb; j++)
        sb[j] = 0.0;
    if (ma > mb)
        return mean_a;
    if (mb > ma)
        return mean_b;
    return (mean_a + mean_b) / 2.0;
}

int glove_one_vs_all(
    const double *a_data, int64_t ma, double n_a,
    const double *data, int64_t m_max,
    const int64_t *lengths, const int64_t *counts,
    const int64_t *targets, int64_t n_targets,
    double w_sigma, double w_tau, double phi_sigma, double phi_tau,
    double *out)
{
    int64_t pad_width = ma > m_max ? ma : m_max;
    double *sa = calloc((size_t)pad_width, sizeof(double));
    double *sb = calloc((size_t)pad_width, sizeof(double));
    double *tb = malloc((size_t)(9 * m_max) * sizeof(double));
    if (sa == NULL || sb == NULL || tb == NULL) {
        free(sa);
        free(sb);
        free(tb);
        return -1;
    }
    for (int64_t idx = 0; idx < n_targets; idx++) {
        int64_t t = targets[idx];
        out[idx] = pair_effort(
            a_data, ma, n_a,
            data + t * m_max * NCOLS, lengths[t], (double)counts[t],
            sa, sb, tb, m_max, pad_width,
            w_sigma, w_tau, phi_sigma, phi_tau);
    }
    free(sa);
    free(sb);
    free(tb);
    return 0;
}

/* Batched multi-probe entry points: one boundary crossing per probe
 * batch instead of one per probe.  Probes arrive as their own padded
 * (n_probes, p_m_max, NCOLS) tensor (the ProbeBatch layout); each
 * probe's pad width is max(p_len, m_max) exactly as in the per-probe
 * entry, and the scratch vectors are sized to the widest probe and
 * re-zeroed by pair_effort, so every output value is bitwise the
 * per-probe call's.  Scratch is allocated per call, never shared, so
 * concurrent calls from GIL-released threads are safe. */
int glove_many_vs_all(
    const double *p_data, int64_t p_m_max,
    const int64_t *p_lengths, const int64_t *p_counts, int64_t n_probes,
    const double *data, int64_t m_max,
    const int64_t *lengths, const int64_t *counts,
    const int64_t *targets, int64_t n_targets,
    double w_sigma, double w_tau, double phi_sigma, double phi_tau,
    double *out)
{
    int64_t pad_max = p_m_max > m_max ? p_m_max : m_max;
    double *sa = calloc((size_t)pad_max, sizeof(double));
    double *sb = calloc((size_t)pad_max, sizeof(double));
    double *tb = malloc((size_t)(9 * m_max) * sizeof(double));
    if (sa == NULL || sb == NULL || tb == NULL) {
        free(sa);
        free(sb);
        free(tb);
        return -1;
    }
    for (int64_t p = 0; p < n_probes; p++) {
        const double *a = p_data + p * p_m_max * NCOLS;
        int64_t ma = p_lengths[p];
        double n_a = (double)p_counts[p];
        int64_t pad_width = ma > m_max ? ma : m_max;
        double *row = out + p * n_targets;
        for (int64_t idx = 0; idx < n_targets; idx++) {
            int64_t t = targets[idx];
            row[idx] = pair_effort(
                a, ma, n_a,
                data + t * m_max * NCOLS, lengths[t], (double)counts[t],
                sa, sb, tb, m_max, pad_width,
                w_sigma, w_tau, phi_sigma, phi_tau);
        }
    }
    free(sa);
    free(sb);
    free(tb);
    return 0;
}

/* Ragged twin: probe p evaluates flat_targets[offsets[p] ..
 * offsets[p+1]) into the same flat positions of out (CSR layout). */
int glove_many_vs_some(
    const double *p_data, int64_t p_m_max,
    const int64_t *p_lengths, const int64_t *p_counts, int64_t n_probes,
    const double *data, int64_t m_max,
    const int64_t *lengths, const int64_t *counts,
    const int64_t *flat_targets, const int64_t *offsets,
    double w_sigma, double w_tau, double phi_sigma, double phi_tau,
    double *out)
{
    int64_t pad_max = p_m_max > m_max ? p_m_max : m_max;
    double *sa = calloc((size_t)pad_max, sizeof(double));
    double *sb = calloc((size_t)pad_max, sizeof(double));
    double *tb = malloc((size_t)(9 * m_max) * sizeof(double));
    if (sa == NULL || sb == NULL || tb == NULL) {
        free(sa);
        free(sb);
        free(tb);
        return -1;
    }
    for (int64_t p = 0; p < n_probes; p++) {
        const double *a = p_data + p * p_m_max * NCOLS;
        int64_t ma = p_lengths[p];
        double n_a = (double)p_counts[p];
        int64_t pad_width = ma > m_max ? ma : m_max;
        for (int64_t idx = offsets[p]; idx < offsets[p + 1]; idx++) {
            int64_t t = flat_targets[idx];
            out[idx] = pair_effort(
                a, ma, n_a,
                data + t * m_max * NCOLS, lengths[t], (double)counts[t],
                sa, sb, tb, m_max, pad_width,
                w_sigma, w_tau, phi_sigma, phi_tau);
        }
    }
    free(sa);
    free(sb);
    free(tb);
    return 0;
}

/* ---- fused bound-and-prune sweep ----------------------------------
 * Transliteration of the bounded_* pure twins: the level-0 hull-gap
 * bound and the level-1 per-time-bucket bound are evaluated inside the
 * native sweep, and the exact kernel runs only for candidates whose
 * bound could still beat the probe's running best (or, where the
 * reverse flag allows, the target's cached best).  Every comparison
 * replicates NumPy's maximum/minimum tie rule, every mean runs the
 * same pairwise summation over the same (padded) widths, and the walk
 * order is a stable sort by level-0 bound — so evaluated positions and
 * values are bitwise those of the reference walk. */

static double interval_gap(double a_lo, double a_hi, double b_lo, double b_hi)
{
    double g1 = a_lo - b_hi;
    double g2 = b_lo - a_hi;
    double g = g1 > g2 ? g1 : g2;
    return 0.0 > g ? 0.0 : g;
}

static double hull_bound(
    const double *hull, int64_t hull_cap, int64_t a, int64_t t,
    double w_sigma, double w_tau, double phi_sigma, double phi_tau)
{
    double gx = interval_gap(hull[0 * hull_cap + a], hull[1 * hull_cap + a],
                             hull[0 * hull_cap + t], hull[1 * hull_cap + t]);
    double gy = interval_gap(hull[2 * hull_cap + a], hull[3 * hull_cap + a],
                             hull[2 * hull_cap + t], hull[3 * hull_cap + t]);
    double gt = interval_gap(hull[4 * hull_cap + a], hull[5 * hull_cap + a],
                             hull[4 * hull_cap + t], hull[5 * hull_cap + t]);
    double s_term = (gx + gy) / phi_sigma;
    s_term = s_term < 1.0 ? s_term : 1.0;
    double t_term = gt / phi_tau;
    t_term = t_term < 1.0 ? t_term : 1.0;
    return w_sigma * s_term + w_tau * t_term;
}

static double sample_hull_bound(
    double sx, double shx, double sy, double shy, double st, double sht,
    const double *h,
    double w_sigma, double w_tau, double phi_sigma, double phi_tau)
{
    double gx = interval_gap(sx, shx, h[0], h[1]);
    double gy = interval_gap(sy, shy, h[2], h[3]);
    double gt = interval_gap(st, sht, h[4], h[5]);
    double s_term = (gx + gy) / phi_sigma;
    s_term = s_term < 1.0 ? s_term : 1.0;
    double t_term = gt / phi_tau;
    t_term = t_term < 1.0 ? t_term : 1.0;
    return w_sigma * s_term + w_tau * t_term;
}

/* Level-1 bound of the (a, c) pair following Eq. 10's longer-side
 * rule.  The a-side direction folds the minimum over all of c's
 * buckets (unoccupied contribute +inf) and means over ma samples; the
 * c-side direction folds only a's occupied buckets and sums a
 * zero-padded width-m_max vector before dividing by mc, replicating
 * the reference's masked mean bit for bit.  lbbuf needs m_max
 * doubles. */
static double bucket_bound(
    const double *data, int64_t m_max, const int64_t *lengths,
    const double *bhull, const uint8_t *bocc, int64_t n_buckets,
    int64_t a, int64_t c, double *lbbuf,
    double w_sigma, double w_tau, double phi_sigma, double phi_tau)
{
    int64_t ma = lengths[a];
    int64_t mc = lengths[c];
    double la = 0.0, lb = 0.0;
    if (ma >= mc) {
        const double *ad = data + a * m_max * NCOLS;
        const double *ch = bhull + c * n_buckets * 6;
        const uint8_t *co = bocc + c * n_buckets;
        for (int64_t i = 0; i < ma; i++) {
            const double *s = ad + i * NCOLS;
            double sx = s[XCOL], shx = sx + s[DXCOL];
            double sy = s[YCOL], shy = sy + s[DYCOL];
            double st = s[TCOL], sht = st + s[DTCOL];
            double m = INFINITY;
            for (int64_t b = 0; b < n_buckets; b++) {
                double v = co[b]
                    ? sample_hull_bound(sx, shx, sy, shy, st, sht, ch + b * 6,
                                        w_sigma, w_tau, phi_sigma, phi_tau)
                    : INFINITY;
                m = m < v ? m : v;
            }
            lbbuf[i] = m;
        }
        la = psum(lbbuf, ma) / (double)ma;
    }
    if (mc >= ma) {
        const double *cd = data + c * m_max * NCOLS;
        const double *ah = bhull + a * n_buckets * 6;
        const uint8_t *ao = bocc + a * n_buckets;
        for (int64_t j = 0; j < mc; j++) {
            const double *s = cd + j * NCOLS;
            double sx = s[XCOL], shx = sx + s[DXCOL];
            double sy = s[YCOL], shy = sy + s[DYCOL];
            double st = s[TCOL], sht = st + s[DTCOL];
            double m = INFINITY;
            for (int64_t b = 0; b < n_buckets; b++) {
                if (ao[b]) {
                    double v = sample_hull_bound(
                        sx, shx, sy, shy, st, sht, ah + b * 6,
                        w_sigma, w_tau, phi_sigma, phi_tau);
                    m = m < v ? m : v;
                }
            }
            lbbuf[j] = m;
        }
        for (int64_t j = mc; j < m_max; j++)
            lbbuf[j] = 0.0;
        lb = psum(lbbuf, m_max) / (double)mc;
    }
    if (ma > mc)
        return la;
    if (mc > ma)
        return lb;
    return (la + lb) / 2.0;
}

/* Bottom-up stable mergesort of indices by key: a stable sort's
 * permutation is unique, so this matches np.argsort(kind="stable"). */
static void stable_argsort(const double *keys, int64_t *idx, int64_t *tmp, int64_t n)
{
    for (int64_t i = 0; i < n; i++)
        idx[i] = i;
    for (int64_t width = 1; width < n; width *= 2) {
        for (int64_t lo = 0; lo < n; lo += 2 * width) {
            int64_t mid = lo + width < n ? lo + width : n;
            int64_t hi = lo + 2 * width < n ? lo + 2 * width : n;
            int64_t i = lo, j = mid, k = lo;
            while (i < mid && j < hi) {
                /* Right run wins only on a strict key win: equal keys
                 * keep their left-first (stable) order. */
                if (keys[idx[j]] < keys[idx[i]])
                    tmp[k++] = idx[j++];
                else
                    tmp[k++] = idx[i++];
            }
            while (i < mid)
                tmp[k++] = idx[i++];
            while (j < hi)
                tmp[k++] = idx[j++];
        }
        for (int64_t i = 0; i < n; i++)
            idx[i] = tmp[i];
    }
}

/* Fused bound-and-prune ragged sweep (CSR layout; probes are slot ids
 * into the store tensors).  Pruned positions get a +inf sentinel
 * (exact efforts never exceed 1.0) and count into pruned[p]. */
int glove_bounded_many_vs_some(
    const int64_t *probe_slots, int64_t n_probes,
    const double *data, int64_t m_max,
    const int64_t *lengths, const int64_t *counts,
    const double *hull, int64_t hull_cap,
    const double *bhull, const uint8_t *bocc, int64_t n_buckets,
    const int64_t *flat_targets, const int64_t *offsets,
    const double *thresholds, const uint8_t *reverse, const double *best_vals,
    double w_sigma, double w_tau, double phi_sigma, double phi_tau,
    double *out, int64_t *pruned)
{
    int64_t n_max = 1;
    for (int64_t p = 0; p < n_probes; p++) {
        int64_t n = offsets[p + 1] - offsets[p];
        if (n > n_max)
            n_max = n;
    }
    double *sa = calloc((size_t)m_max, sizeof(double));
    double *sb = calloc((size_t)m_max, sizeof(double));
    double *tb = malloc((size_t)(9 * m_max) * sizeof(double));
    double *lbbuf = malloc((size_t)m_max * sizeof(double));
    double *lb0 = malloc((size_t)n_max * sizeof(double));
    int64_t *order = malloc((size_t)n_max * sizeof(int64_t));
    int64_t *tmp = malloc((size_t)n_max * sizeof(int64_t));
    if (sa == NULL || sb == NULL || tb == NULL || lbbuf == NULL ||
        lb0 == NULL || order == NULL || tmp == NULL) {
        free(sa); free(sb); free(tb); free(lbbuf);
        free(lb0); free(order); free(tmp);
        return -1;
    }
    for (int64_t p = 0; p < n_probes; p++) {
        int64_t a = probe_slots[p];
        int64_t ma = lengths[a];
        const double *a_data = data + a * m_max * NCOLS;
        double n_a = (double)counts[a];
        int64_t off = offsets[p];
        int64_t n = offsets[p + 1] - off;
        if (n == 0)
            continue;
        for (int64_t idx = 0; idx < n; idx++)
            lb0[idx] = hull_bound(hull, hull_cap, a, flat_targets[off + idx],
                                  w_sigma, w_tau, phi_sigma, phi_tau);
        stable_argsort(lb0, order, tmp, n);
        double best = thresholds[p];
        int64_t best_idx = -1;
        for (int64_t k = 0; k < n; k++) {
            int64_t j = order[k];
            int64_t t = flat_targets[off + j];
            int rev = reverse[off + j] != 0;
            double lb = lb0[j];
            if (lb > best && (!rev || lb >= best_vals[t])) {
                out[off + j] = INFINITY;
                pruned[p]++;
                continue;
            }
            double lb1 = bucket_bound(data, m_max, lengths, bhull, bocc,
                                      n_buckets, a, t, lbbuf,
                                      w_sigma, w_tau, phi_sigma, phi_tau);
            if (lb1 > best && (!rev || lb1 >= best_vals[t])) {
                out[off + j] = INFINITY;
                pruned[p]++;
                continue;
            }
            double v = pair_effort(
                a_data, ma, n_a,
                data + t * m_max * NCOLS, lengths[t], (double)counts[t],
                sa, sb, tb, m_max, m_max,
                w_sigma, w_tau, phi_sigma, phi_tau);
            out[off + j] = v;
            if (v < best || (v == best && t < best_idx)) {
                best = v;
                best_idx = t;
            }
        }
    }
    free(sa); free(sb); free(tb); free(lbbuf);
    free(lb0); free(order); free(tmp);
    return 0;
}

/* Fused sweep with in-kernel (argmin, min) reduction over one shared
 * target set: no row materialization at all.  A probe meeting itself
 * in the shared set is skipped without counting as pruned; a probe
 * whose threshold no target strictly beats keeps (threshold, -1). */
int glove_bounded_many_vs_all(
    const int64_t *probe_slots, int64_t n_probes,
    const double *data, int64_t m_max,
    const int64_t *lengths, const int64_t *counts,
    const double *hull, int64_t hull_cap,
    const double *bhull, const uint8_t *bocc, int64_t n_buckets,
    const int64_t *targets, int64_t n_targets,
    const double *thresholds,
    double w_sigma, double w_tau, double phi_sigma, double phi_tau,
    double *best_out, int64_t *best_idx_out, int64_t *pruned)
{
    int64_t n_max = n_targets > 1 ? n_targets : 1;
    double *sa = calloc((size_t)m_max, sizeof(double));
    double *sb = calloc((size_t)m_max, sizeof(double));
    double *tb = malloc((size_t)(9 * m_max) * sizeof(double));
    double *lbbuf = malloc((size_t)m_max * sizeof(double));
    double *lb0 = malloc((size_t)n_max * sizeof(double));
    int64_t *order = malloc((size_t)n_max * sizeof(int64_t));
    int64_t *tmp = malloc((size_t)n_max * sizeof(int64_t));
    if (sa == NULL || sb == NULL || tb == NULL || lbbuf == NULL ||
        lb0 == NULL || order == NULL || tmp == NULL) {
        free(sa); free(sb); free(tb); free(lbbuf);
        free(lb0); free(order); free(tmp);
        return -1;
    }
    for (int64_t p = 0; p < n_probes; p++) {
        int64_t a = probe_slots[p];
        int64_t ma = lengths[a];
        const double *a_data = data + a * m_max * NCOLS;
        double n_a = (double)counts[a];
        for (int64_t idx = 0; idx < n_targets; idx++)
            lb0[idx] = hull_bound(hull, hull_cap, a, targets[idx],
                                  w_sigma, w_tau, phi_sigma, phi_tau);
        stable_argsort(lb0, order, tmp, n_targets);
        double best = thresholds[p];
        int64_t best_idx = -1;
        for (int64_t k = 0; k < n_targets; k++) {
            int64_t j = order[k];
            int64_t t = targets[j];
            if (t == a)
                continue;
            if (lb0[j] > best) {
                pruned[p]++;
                continue;
            }
            double lb1 = bucket_bound(data, m_max, lengths, bhull, bocc,
                                      n_buckets, a, t, lbbuf,
                                      w_sigma, w_tau, phi_sigma, phi_tau);
            if (lb1 > best) {
                pruned[p]++;
                continue;
            }
            double v = pair_effort(
                a_data, ma, n_a,
                data + t * m_max * NCOLS, lengths[t], (double)counts[t],
                sa, sb, tb, m_max, m_max,
                w_sigma, w_tau, phi_sigma, phi_tau);
            if (v < best || (v == best && t < best_idx)) {
                best = v;
                best_idx = t;
            }
        }
        best_out[p] = best;
        best_idx_out[p] = best_idx;
    }
    free(sa); free(sb); free(tb); free(lbbuf);
    free(lb0); free(order); free(tmp);
    return 0;
}

/* mat must arrive prefilled with +inf (the diagonal stays that way). */
int glove_pairwise_matrix(
    const double *data, int64_t n, int64_t m_max,
    const int64_t *lengths, const int64_t *counts,
    double w_sigma, double w_tau, double phi_sigma, double phi_tau,
    double *mat)
{
    double *sa = calloc((size_t)m_max, sizeof(double));
    double *sb = calloc((size_t)m_max, sizeof(double));
    double *tb = malloc((size_t)(9 * m_max) * sizeof(double));
    if (sa == NULL || sb == NULL || tb == NULL) {
        free(sa);
        free(sb);
        free(tb);
        return -1;
    }
    for (int64_t i = 0; i + 1 < n; i++) {
        const double *a = data + i * m_max * NCOLS;
        double n_a = (double)counts[i];
        for (int64_t j = i + 1; j < n; j++) {
            double v = pair_effort(
                a, lengths[i], n_a,
                data + j * m_max * NCOLS, lengths[j], (double)counts[j],
                sa, sb, tb, m_max, m_max,
                w_sigma, w_tau, phi_sigma, phi_tau);
            mat[i * n + j] = v;
            mat[j * n + i] = v;
        }
    }
    free(sa);
    free(sb);
    free(tb);
    return 0;
}
"""

#: ``-ffp-contract=off`` forbids FMA contraction — with it off, SIMD
#: add/sub/mul/div/min/max are bit-identical to their scalar forms, so
#: ``-march=native`` vectorization cannot change results; the explicit
#: IEEE flags guard against distributions that alias ``cc`` to
#: something exotic.  ``-march=native`` is dropped on compilers that
#: reject it (the artifact cache is per-machine, so tuning is safe).
CFLAGS = ("-O3", "-fPIC", "-shared", "-ffp-contract=off", "-fno-fast-math")
NATIVE_FLAG = "-march=native"


def _cache_path() -> Path:
    digest = hashlib.sha256(
        (C_SOURCE + " ".join(CFLAGS) + NATIVE_FLAG).encode()
    ).hexdigest()[:16]
    return default_artifact_dir() / "ckernel" / f"stretch_{digest}.so"


def _compile(cache: Path) -> bool:
    compiler = shutil.which(os.environ.get("CC", "cc"))
    if compiler is None:
        return False
    cache.parent.mkdir(parents=True, exist_ok=True)
    # Build in a scratch dir, then rename into place: concurrent
    # processes race benignly (last rename wins, same content).
    with tempfile.TemporaryDirectory(dir=cache.parent) as td:
        src = Path(td) / "stretch.c"
        obj = Path(td) / "stretch.so"
        src.write_text(C_SOURCE)
        for flags in ((*CFLAGS, NATIVE_FLAG), CFLAGS):
            try:
                subprocess.run(
                    [compiler, *flags, str(src), "-o", str(obj)],
                    check=True,
                    capture_output=True,
                    timeout=120,
                )
            except (OSError, subprocess.SubprocessError):
                continue
            os.replace(obj, cache)
            return True
    return False


def _bind(lib: ctypes.CDLL) -> ctypes.CDLL:
    import numpy.ctypeslib as npc

    f64 = npc.ndpointer(dtype="float64", flags="C_CONTIGUOUS")
    i64 = npc.ndpointer(dtype="int64", flags="C_CONTIGUOUS")
    c_i64 = ctypes.c_int64
    c_f64 = ctypes.c_double
    lib.glove_one_vs_all.restype = ctypes.c_int
    lib.glove_one_vs_all.argtypes = [
        f64, c_i64, c_f64,                 # a_data, ma, n_a
        f64, c_i64,                        # data, m_max
        i64, i64,                          # lengths, counts
        i64, c_i64,                        # targets, n_targets
        c_f64, c_f64, c_f64, c_f64,        # w_sigma, w_tau, phis
        f64,                               # out
    ]
    lib.glove_pairwise_matrix.restype = ctypes.c_int
    lib.glove_pairwise_matrix.argtypes = [
        f64, c_i64, c_i64,                 # data, n, m_max
        i64, i64,                          # lengths, counts
        c_f64, c_f64, c_f64, c_f64,        # w_sigma, w_tau, phis
        f64,                               # mat
    ]
    lib.glove_many_vs_all.restype = ctypes.c_int
    lib.glove_many_vs_all.argtypes = [
        f64, c_i64,                        # p_data, p_m_max
        i64, i64, c_i64,                   # p_lengths, p_counts, n_probes
        f64, c_i64,                        # data, m_max
        i64, i64,                          # lengths, counts
        i64, c_i64,                        # targets, n_targets
        c_f64, c_f64, c_f64, c_f64,        # w_sigma, w_tau, phis
        f64,                               # out
    ]
    lib.glove_many_vs_some.restype = ctypes.c_int
    lib.glove_many_vs_some.argtypes = [
        f64, c_i64,                        # p_data, p_m_max
        i64, i64, c_i64,                   # p_lengths, p_counts, n_probes
        f64, c_i64,                        # data, m_max
        i64, i64,                          # lengths, counts
        i64, i64,                          # flat_targets, offsets
        c_f64, c_f64, c_f64, c_f64,        # w_sigma, w_tau, phis
        f64,                               # out
    ]
    u8 = npc.ndpointer(dtype="uint8", flags="C_CONTIGUOUS")
    lib.glove_bounded_many_vs_some.restype = ctypes.c_int
    lib.glove_bounded_many_vs_some.argtypes = [
        i64, c_i64,                        # probe_slots, n_probes
        f64, c_i64,                        # data, m_max
        i64, i64,                          # lengths, counts
        f64, c_i64,                        # hull, hull_cap
        f64, u8, c_i64,                    # bucket_hull, bucket_occ, n_buckets
        i64, i64,                          # flat_targets, offsets
        f64, u8, f64,                      # thresholds, reverse, best_vals
        c_f64, c_f64, c_f64, c_f64,        # w_sigma, w_tau, phis
        f64, i64,                          # out, pruned
    ]
    lib.glove_bounded_many_vs_all.restype = ctypes.c_int
    lib.glove_bounded_many_vs_all.argtypes = [
        i64, c_i64,                        # probe_slots, n_probes
        f64, c_i64,                        # data, m_max
        i64, i64,                          # lengths, counts
        f64, c_i64,                        # hull, hull_cap
        f64, u8, c_i64,                    # bucket_hull, bucket_occ, n_buckets
        i64, c_i64,                        # targets, n_targets
        f64,                               # thresholds
        c_f64, c_f64, c_f64, c_f64,        # w_sigma, w_tau, phis
        f64, i64, i64,                     # best, best_idx, pruned
    ]
    return lib


def load() -> Optional[ctypes.CDLL]:
    """Compile (once per source revision) and load the shared library.

    Returns ``None`` — and the callers fall back to the pure tier —
    when the tier is disabled via ``REPRO_CC_KERNEL=0`` or any build
    step fails.
    """
    if os.environ.get("REPRO_CC_KERNEL", "1") == "0":
        return None
    try:
        cache = _cache_path()
        if not cache.exists() and not _compile(cache):
            return None
        return _bind(ctypes.CDLL(str(cache)))
    except (OSError, ValueError):
        return None


LIB = load()
