"""Compiled stretch-kernel tier: JIT Eq. 10 over the padded layout.

The paper's CUDA offload (Section 6.3) maps here to a ``numba``-JIT
scalar kernel operating directly on the ``(N, m_max, 6)`` padded
tensors of :class:`repro.core.pairwise.PaddedFingerprints` /
:class:`repro.core.engine.SlotStore`.  The JIT tier removes the
per-call dispatch and broadcast-temporaries overhead of the NumPy
reference at small target counts (the GLOVE hot loop's regime).

**Byte-identity policy (DESIGN.md D9).**  Every backend must return
bit-for-bit the NumPy reference's results.  The kernels below therefore
replicate the reference's exact operation order:

* elementwise maxima/minima use NumPy's tie rule (``in1 OP in2 ? in1 :
  in2``), and clamps are written as explicit compares so ``-0.0`` can
  never appear where the reference produces ``+0.0``;
* the per-direction means sum a zero-padded width-``max(ma, m_max)``
  vector with a faithful re-implementation of NumPy's pairwise
  summation: sequential below 8 elements, an 8-accumulator unrolled
  tree up to 128, recursive halving above with splits rounded down to a
  multiple of 8 (realized with an explicit stack — numba-friendly, no
  self-recursion).

The module binds three tiers to one kernel definition, best first:

1. ``numba`` — the ``[compiled]`` packaging extra; JITs the pure
   twins below unchanged.
2. ``cc`` — a :mod:`ctypes` binding of the same kernels transliterated
   to C (:mod:`repro.core._ckernel`), built on demand with the system
   compiler; covers containers where the extra cannot be installed.
3. ``pure`` — the undecorated Python twins; always importable, used by
   the parity property tests and as the stand-in when neither
   accelerated tier is available.

``COMPILED_TIER`` names the bound tier (``"numba"``/``"cc"``/``None``)
and ``COMPILED_AVAILABLE`` is true when an accelerated tier is bound —
that is what :class:`repro.core.engine.CompiledBackend` keys on.
"""

from __future__ import annotations

import numpy as np

from repro.core.sample import DT, DX, DY, T, X, Y

try:  # pragma: no cover - exercised via the compiled-parity CI job
    from numba import njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the default container path
    njit = None
    NUMBA_AVAILABLE = False

#: Stack depth for the iterative pairwise summation: each level at
#: least halves ``n``, so 64 frames cover any addressable array.
_PSUM_STACK = 64


def _build_kernels(decorate):
    """Build the kernel family, optionally JIT-decorated.

    Called twice: once undecorated (the always-available pure-Python
    twins) and once under ``numba.njit`` when the extra is installed.
    Both families run the very same source, so parity between them is
    parity between the compiled tier and this file's reference text.
    """

    @decorate
    def psum_leaf(a, lo, n):
        # NumPy's pairwise_sum base cases: sequential below 8 elements,
        # 8 independent accumulators combined as a balanced tree up to
        # the 128-element block size.
        if n < 8:
            res = 0.0
            for i in range(n):
                res += a[lo + i]
            return res
        r0 = a[lo]
        r1 = a[lo + 1]
        r2 = a[lo + 2]
        r3 = a[lo + 3]
        r4 = a[lo + 4]
        r5 = a[lo + 5]
        r6 = a[lo + 6]
        r7 = a[lo + 7]
        i = 8
        while i + 8 <= n:
            r0 += a[lo + i]
            r1 += a[lo + i + 1]
            r2 += a[lo + i + 2]
            r3 += a[lo + i + 3]
            r4 += a[lo + i + 4]
            r5 += a[lo + i + 5]
            r6 += a[lo + i + 6]
            r7 += a[lo + i + 7]
            i += 8
        res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
        while i < n:
            res += a[lo + i]
            i += 1
        return res

    @decorate
    def pairwise_sum(a, lo, n):
        # NumPy's recursive halving (splits rounded down to a multiple
        # of 8) evaluated with an explicit left-first post-order stack.
        if n <= 128:
            return psum_leaf(a, lo, n)
        lo_st = np.empty(_PSUM_STACK, dtype=np.int64)
        n_st = np.empty(_PSUM_STACK, dtype=np.int64)
        state = np.empty(_PSUM_STACK, dtype=np.int8)
        left = np.empty(_PSUM_STACK, dtype=np.float64)
        top = 0
        lo_st[0] = lo
        n_st[0] = n
        state[0] = 0
        ret = 0.0
        while top >= 0:
            nn = n_st[top]
            if nn <= 128:
                ret = psum_leaf(a, lo_st[top], nn)
                top -= 1
                while top >= 0 and state[top] == 2:
                    ret = left[top] + ret
                    top -= 1
                if top >= 0:
                    # Parent was awaiting its left half; store it and
                    # descend into the right half.
                    left[top] = ret
                    state[top] = 2
                    n2 = n_st[top] // 2
                    n2 -= n2 % 8
                    lo_st[top + 1] = lo_st[top] + n2
                    n_st[top + 1] = n_st[top] - n2
                    state[top + 1] = 0
                    top += 1
            else:
                n2 = nn // 2
                n2 -= n2 % 8
                state[top] = 1
                lo_st[top + 1] = lo_st[top]
                n_st[top + 1] = n2
                state[top + 1] = 0
                top += 1
        return ret

    @decorate
    def pair_effort(
        a_data, n_a, b_data, mb, n_b,
        scratch_a, scratch_b, pad_width,
        w_sigma, w_tau, phi_sigma, phi_tau,
    ):
        ma = a_data.shape[0]
        w_a = n_a / (n_a + n_b)
        w_b = n_b / (n_a + n_b)
        for i in range(ma):
            scratch_a[i] = np.inf
        for j in range(mb):
            scratch_b[j] = np.inf
        for i in range(ma):
            axi = a_data[i, X]
            ayi = a_data[i, Y]
            ati = a_data[i, T]
            ahx = axi + a_data[i, DX]
            ahy = ayi + a_data[i, DY]
            aht = ati + a_data[i, DT]
            wa_ext = w_a * (a_data[i, DX] + a_data[i, DY])
            wa_t = w_a * a_data[i, DT]
            for j in range(mb):
                bxj = b_data[j, X]
                byj = b_data[j, Y]
                btj = b_data[j, T]
                bhx = bxj + b_data[j, DX]
                bhy = byj + b_data[j, DY]
                bht = btj + b_data[j, DT]
                ux = (ahx if ahx > bhx else bhx) - (axi if axi < bxj else bxj)
                uy = (ahy if ahy > bhy else bhy) - (ayi if ayi < byj else byj)
                ut = (aht if aht > bht else bht) - (ati if ati < btj else btj)
                raw_s = (ux + uy) - (wa_ext + w_b * (b_data[j, DX] + b_data[j, DY]))
                if not raw_s > 0.0:
                    raw_s = 0.0
                raw_t = ut - (wa_t + w_b * b_data[j, DT])
                if not raw_t > 0.0:
                    raw_t = 0.0
                s_term = raw_s / phi_sigma
                if not s_term < 1.0:
                    s_term = 1.0
                t_term = raw_t / phi_tau
                if not t_term < 1.0:
                    t_term = 1.0
                d = w_sigma * s_term + w_tau * t_term
                if d < scratch_a[i]:
                    scratch_a[i] = d
                if d < scratch_b[j]:
                    scratch_b[j] = d
        mean_a = pairwise_sum(scratch_a, 0, pad_width) / ma
        mean_b = pairwise_sum(scratch_b, 0, pad_width) / mb
        for i in range(ma):
            scratch_a[i] = 0.0
        for j in range(mb):
            scratch_b[j] = 0.0
        if ma > mb:
            return mean_a
        if mb > ma:
            return mean_b
        return (mean_a + mean_b) / 2.0

    @decorate
    def one_vs_all_arrays(
        a_data, n_a, data, lengths, counts, targets,
        w_sigma, w_tau, phi_sigma, phi_tau,
    ):
        ma = a_data.shape[0]
        m_max = data.shape[1]
        pad_width = ma if ma > m_max else m_max
        scratch_a = np.zeros(pad_width)
        scratch_b = np.zeros(pad_width)
        out = np.empty(targets.shape[0])
        for idx in range(targets.shape[0]):
            t = targets[idx]
            out[idx] = pair_effort(
                a_data, n_a, data[t], lengths[t], float(counts[t]),
                scratch_a, scratch_b, pad_width,
                w_sigma, w_tau, phi_sigma, phi_tau,
            )
        return out

    @decorate
    def pairwise_matrix_arrays(
        data, lengths, counts, w_sigma, w_tau, phi_sigma, phi_tau,
    ):
        n = data.shape[0]
        m_max = data.shape[1]
        scratch_a = np.zeros(m_max)
        scratch_b = np.zeros(m_max)
        mat = np.full((n, n), np.inf)
        for i in range(n - 1):
            a_data = data[i, : lengths[i]]
            n_a = float(counts[i])
            for j in range(i + 1, n):
                v = pair_effort(
                    a_data, n_a, data[j], lengths[j], float(counts[j]),
                    scratch_a, scratch_b, m_max,
                    w_sigma, w_tau, phi_sigma, phi_tau,
                )
                mat[i, j] = v
                mat[j, i] = v
        return mat

    @decorate
    def many_vs_all_arrays(
        p_data, p_lengths, p_counts, data, lengths, counts, targets,
        w_sigma, w_tau, phi_sigma, phi_tau,
    ):
        # Multi-probe face of one_vs_all_arrays over a packed probe
        # batch (ProbeBatch layout): row p is bitwise one_vs_all of
        # probe p.  The scratch vectors are sized to the widest probe's
        # pad width and re-zeroed by pair_effort, so per-pair values
        # are independent of the batch composition.
        P = p_data.shape[0]
        m_max = data.shape[1]
        p_m_max = p_data.shape[1]
        pad_max = p_m_max if p_m_max > m_max else m_max
        scratch_a = np.zeros(pad_max)
        scratch_b = np.zeros(pad_max)
        out = np.empty((P, targets.shape[0]))
        for p in range(P):
            ma = p_lengths[p]
            a_data = p_data[p, :ma]
            n_a = float(p_counts[p])
            pad_width = ma if ma > m_max else m_max
            for idx in range(targets.shape[0]):
                t = targets[idx]
                out[p, idx] = pair_effort(
                    a_data, n_a, data[t], lengths[t], float(counts[t]),
                    scratch_a, scratch_b, pad_width,
                    w_sigma, w_tau, phi_sigma, phi_tau,
                )
        return out

    @decorate
    def many_vs_some_arrays(
        p_data, p_lengths, p_counts, data, lengths, counts,
        flat_targets, offsets,
        w_sigma, w_tau, phi_sigma, phi_tau,
    ):
        # Ragged twin: probe p evaluates flat_targets[offsets[p] :
        # offsets[p + 1]] (CSR layout), one flat result row.  Same
        # scratch discipline as many_vs_all_arrays.
        P = p_data.shape[0]
        m_max = data.shape[1]
        p_m_max = p_data.shape[1]
        pad_max = p_m_max if p_m_max > m_max else m_max
        scratch_a = np.zeros(pad_max)
        scratch_b = np.zeros(pad_max)
        out = np.empty(flat_targets.shape[0])
        for p in range(P):
            ma = p_lengths[p]
            a_data = p_data[p, :ma]
            n_a = float(p_counts[p])
            pad_width = ma if ma > m_max else m_max
            for idx in range(offsets[p], offsets[p + 1]):
                t = flat_targets[idx]
                out[idx] = pair_effort(
                    a_data, n_a, data[t], lengths[t], float(counts[t]),
                    scratch_a, scratch_b, pad_width,
                    w_sigma, w_tau, phi_sigma, phi_tau,
                )
        return out

    @decorate
    def interval_gap(a_lo, a_hi, b_lo, b_hi):
        # np.maximum(0.0, np.maximum(a_lo - b_hi, b_lo - a_hi)) with
        # NumPy's tie rule (in1 > in2 ? in1 : in2) written out, so the
        # scalar bound is bitwise the broadcast bound.
        g1 = a_lo - b_hi
        g2 = b_lo - a_hi
        g = g1 if g1 > g2 else g2
        return 0.0 if 0.0 > g else g

    @decorate
    def hull_bound(hull, a, t, w_sigma, w_tau, phi_sigma, phi_tau):
        # Level-0 bound: gap between the (6, cap) component-major hull
        # SoA columns of slots a and t — the scalar twin of
        # StretchEngine.hull_lower_bounds.
        gx = interval_gap(hull[0, a], hull[1, a], hull[0, t], hull[1, t])
        gy = interval_gap(hull[2, a], hull[3, a], hull[2, t], hull[3, t])
        gt = interval_gap(hull[4, a], hull[5, a], hull[4, t], hull[5, t])
        s_term = (gx + gy) / phi_sigma
        if not s_term < 1.0:
            s_term = 1.0
        t_term = gt / phi_tau
        if not t_term < 1.0:
            t_term = 1.0
        return w_sigma * s_term + w_tau * t_term

    @decorate
    def bucket_bound(
        data, lengths, bucket_hull, bucket_occ, a, c, lbbuf,
        w_sigma, w_tau, phi_sigma, phi_tau,
    ):
        # Level-1 bound: samples vs per-time-bucket hulls following
        # Eq. 10's longer-side rule — the scalar twin of
        # StretchEngine.bucket_lower_bounds.  The a-side direction folds
        # the minimum over *all* buckets (unoccupied contribute +inf);
        # the c-side direction folds only the probe's occupied buckets
        # and sums a zero-padded width-m_max vector, replicating the
        # reference's block-composition-independent masked mean.
        ma = lengths[a]
        mc = lengths[c]
        m_max = data.shape[1]
        n_buckets = bucket_occ.shape[1]
        la = 0.0
        lb = 0.0
        if ma >= mc:
            for i in range(ma):
                sx = data[a, i, X]
                shx = sx + data[a, i, DX]
                sy = data[a, i, Y]
                shy = sy + data[a, i, DY]
                st = data[a, i, T]
                sht = st + data[a, i, DT]
                m = np.inf
                for b in range(n_buckets):
                    if bucket_occ[c, b]:
                        gx = interval_gap(sx, shx, bucket_hull[c, b, 0], bucket_hull[c, b, 1])
                        gy = interval_gap(sy, shy, bucket_hull[c, b, 2], bucket_hull[c, b, 3])
                        gt = interval_gap(st, sht, bucket_hull[c, b, 4], bucket_hull[c, b, 5])
                        s_term = (gx + gy) / phi_sigma
                        if not s_term < 1.0:
                            s_term = 1.0
                        t_term = gt / phi_tau
                        if not t_term < 1.0:
                            t_term = 1.0
                        v = w_sigma * s_term + w_tau * t_term
                    else:
                        v = np.inf
                    if not m < v:
                        m = v
                lbbuf[i] = m
            la = pairwise_sum(lbbuf, 0, ma) / ma
        if mc >= ma:
            for j in range(mc):
                sx = data[c, j, X]
                shx = sx + data[c, j, DX]
                sy = data[c, j, Y]
                shy = sy + data[c, j, DY]
                st = data[c, j, T]
                sht = st + data[c, j, DT]
                m = np.inf
                for b in range(n_buckets):
                    if bucket_occ[a, b]:
                        gx = interval_gap(sx, shx, bucket_hull[a, b, 0], bucket_hull[a, b, 1])
                        gy = interval_gap(sy, shy, bucket_hull[a, b, 2], bucket_hull[a, b, 3])
                        gt = interval_gap(st, sht, bucket_hull[a, b, 4], bucket_hull[a, b, 5])
                        s_term = (gx + gy) / phi_sigma
                        if not s_term < 1.0:
                            s_term = 1.0
                        t_term = gt / phi_tau
                        if not t_term < 1.0:
                            t_term = 1.0
                        v = w_sigma * s_term + w_tau * t_term
                        if not m < v:
                            m = v
                lbbuf[j] = m
            for j in range(mc, m_max):
                lbbuf[j] = 0.0
            lb = pairwise_sum(lbbuf, 0, m_max) / mc
        if ma > mc:
            return la
        if mc > ma:
            return lb
        return (la + lb) / 2.0

    @decorate
    def stable_argsort(keys, idx, tmp):
        # Bottom-up stable mergesort of indices by key.  A stable sort's
        # permutation is unique, so this matches np.argsort(kind="stable")
        # exactly — the property the walkers' visit order relies on.
        n = keys.shape[0]
        for i in range(n):
            idx[i] = i
        width = 1
        while width < n:
            lo = 0
            while lo < n:
                mid = lo + width
                if mid > n:
                    mid = n
                hi = lo + 2 * width
                if hi > n:
                    hi = n
                i = lo
                j = mid
                k = lo
                while i < mid and j < hi:
                    # Take from the right run only on a strict key win:
                    # equal keys keep their left-first (stable) order.
                    if keys[idx[j]] < keys[idx[i]]:
                        tmp[k] = idx[j]
                        j += 1
                    else:
                        tmp[k] = idx[i]
                        i += 1
                    k += 1
                while i < mid:
                    tmp[k] = idx[i]
                    i += 1
                    k += 1
                while j < hi:
                    tmp[k] = idx[j]
                    j += 1
                    k += 1
                lo = hi
            for i in range(n):
                idx[i] = tmp[i]
            width *= 2

    @decorate
    def bounded_many_vs_some_arrays(
        probe_slots, data, lengths, counts,
        hull, bucket_hull, bucket_occ,
        flat_targets, offsets, thresholds, reverse, best_vals,
        w_sigma, w_tau, phi_sigma, phi_tau,
    ):
        # Fused bound-and-prune ragged sweep (CSR layout like
        # many_vs_some_arrays, but slot-addressed: probes are slot ids
        # into the same store tensors, because both bound levels need
        # the probe's hull and bucket summaries).  Each probe walks its
        # targets in level-0 bound order and runs the exact kernel only
        # where the level-0 then level-1 bound could still beat the
        # probe's running best (seeded from thresholds[p]) or — where
        # reverse allows — strictly beat the target's own cached best
        # (best_vals[t]).  Pruned positions get a +inf sentinel (exact
        # efforts never exceed 1.0, so the sentinel is unambiguous) and
        # count into the per-probe pruned total.
        P = probe_slots.shape[0]
        m_max = data.shape[1]
        out = np.empty(flat_targets.shape[0])
        pruned = np.zeros(P, dtype=np.int64)
        n_max = 0
        for p in range(P):
            n = offsets[p + 1] - offsets[p]
            if n > n_max:
                n_max = n
        lb0 = np.empty(n_max)
        order = np.empty(n_max, dtype=np.int64)
        tmp = np.empty(n_max, dtype=np.int64)
        scratch_a = np.zeros(m_max)
        scratch_b = np.zeros(m_max)
        lbbuf = np.empty(m_max)
        for p in range(P):
            a = probe_slots[p]
            ma = lengths[a]
            a_data = data[a, :ma]
            n_a = float(counts[a])
            off = offsets[p]
            n = offsets[p + 1] - off
            if n == 0:
                continue
            for idx in range(n):
                lb0[idx] = hull_bound(
                    hull, a, flat_targets[off + idx],
                    w_sigma, w_tau, phi_sigma, phi_tau,
                )
            stable_argsort(lb0[:n], order[:n], tmp[:n])
            best = thresholds[p]
            best_idx = np.int64(-1)
            for k in range(n):
                j = order[k]
                t = flat_targets[off + j]
                rev = reverse[off + j] != 0
                lb = lb0[j]
                if lb > best and ((not rev) or lb >= best_vals[t]):
                    out[off + j] = np.inf
                    pruned[p] += 1
                    continue
                lb1 = bucket_bound(
                    data, lengths, bucket_hull, bucket_occ, a, t, lbbuf,
                    w_sigma, w_tau, phi_sigma, phi_tau,
                )
                if lb1 > best and ((not rev) or lb1 >= best_vals[t]):
                    out[off + j] = np.inf
                    pruned[p] += 1
                    continue
                v = pair_effort(
                    a_data, n_a, data[t], lengths[t], float(counts[t]),
                    scratch_a, scratch_b, m_max,
                    w_sigma, w_tau, phi_sigma, phi_tau,
                )
                out[off + j] = v
                if v < best or (v == best and t < best_idx):
                    best = v
                    best_idx = t
        return out, pruned

    @decorate
    def bounded_many_vs_all_arrays(
        probe_slots, data, lengths, counts,
        hull, bucket_hull, bucket_occ,
        targets, thresholds,
        w_sigma, w_tau, phi_sigma, phi_tau,
    ):
        # Fused sweep with in-kernel (argmin, min) reduction over one
        # shared target set — for callers that only need the winner, so
        # no row is materialized at all.  Same walk as the ragged entry
        # minus reverse propagation; a probe meeting itself in the
        # shared set is skipped without counting as pruned.  Returns
        # (best, best_idx, pruned); a probe whose threshold no target
        # strictly beats keeps (thresholds[p], -1).
        P = probe_slots.shape[0]
        n = targets.shape[0]
        m_max = data.shape[1]
        best_out = np.empty(P)
        best_idx_out = np.empty(P, dtype=np.int64)
        pruned = np.zeros(P, dtype=np.int64)
        lb0 = np.empty(n)
        order = np.empty(n, dtype=np.int64)
        tmp = np.empty(n, dtype=np.int64)
        scratch_a = np.zeros(m_max)
        scratch_b = np.zeros(m_max)
        lbbuf = np.empty(m_max)
        for p in range(P):
            a = probe_slots[p]
            ma = lengths[a]
            a_data = data[a, :ma]
            n_a = float(counts[a])
            for idx in range(n):
                lb0[idx] = hull_bound(
                    hull, a, targets[idx], w_sigma, w_tau, phi_sigma, phi_tau
                )
            stable_argsort(lb0, order, tmp)
            best = thresholds[p]
            best_idx = np.int64(-1)
            for k in range(n):
                j = order[k]
                t = targets[j]
                if t == a:
                    continue
                if lb0[j] > best:
                    pruned[p] += 1
                    continue
                lb1 = bucket_bound(
                    data, lengths, bucket_hull, bucket_occ, a, t, lbbuf,
                    w_sigma, w_tau, phi_sigma, phi_tau,
                )
                if lb1 > best:
                    pruned[p] += 1
                    continue
                v = pair_effort(
                    a_data, n_a, data[t], lengths[t], float(counts[t]),
                    scratch_a, scratch_b, m_max,
                    w_sigma, w_tau, phi_sigma, phi_tau,
                )
                if v < best or (v == best and t < best_idx):
                    best = v
                    best_idx = t
            best_out[p] = best
            best_idx_out[p] = best_idx
        return best_out, best_idx_out, pruned

    return (
        pairwise_sum,
        one_vs_all_arrays,
        pairwise_matrix_arrays,
        many_vs_all_arrays,
        many_vs_some_arrays,
        bounded_many_vs_all_arrays,
        bounded_many_vs_some_arrays,
    )


# Pure-Python twins: always importable, used by the parity property
# tests (and as the stand-in bindings below when no accelerated tier
# is available).
(
    pairwise_sum_py,
    one_vs_all_pure,
    pairwise_matrix_pure,
    many_vs_all_pure,
    many_vs_some_pure,
    bounded_many_vs_all_pure,
    bounded_many_vs_some_pure,
) = _build_kernels(lambda f: f)


def _bind_cc():
    """ctypes wrappers over the system-compiled library, or ``None``."""
    from repro.core import _ckernel

    lib = _ckernel.LIB
    if lib is None:
        return None

    def one_vs_all_cc(
        a_data, n_a, data, lengths, counts, targets,
        w_sigma, w_tau, phi_sigma, phi_tau,
    ):
        out = np.empty(targets.shape[0], dtype=np.float64)
        rc = lib.glove_one_vs_all(
            np.ascontiguousarray(a_data), a_data.shape[0], float(n_a),
            data, data.shape[1], lengths, counts,
            np.ascontiguousarray(targets), targets.shape[0],
            w_sigma, w_tau, phi_sigma, phi_tau, out,
        )
        if rc != 0:
            raise MemoryError("stretch kernel scratch allocation failed")
        return out

    def pairwise_matrix_cc(
        data, lengths, counts, w_sigma, w_tau, phi_sigma, phi_tau,
    ):
        n = data.shape[0]
        mat = np.full((n, n), np.inf, dtype=np.float64)
        rc = lib.glove_pairwise_matrix(
            data, n, data.shape[1], lengths, counts,
            w_sigma, w_tau, phi_sigma, phi_tau, mat,
        )
        if rc != 0:
            raise MemoryError("stretch kernel scratch allocation failed")
        return mat

    def many_vs_all_cc(
        p_data, p_lengths, p_counts, data, lengths, counts, targets,
        w_sigma, w_tau, phi_sigma, phi_tau,
    ):
        out = np.empty((p_data.shape[0], targets.shape[0]), dtype=np.float64)
        if out.size == 0:
            return out
        rc = lib.glove_many_vs_all(
            p_data, p_data.shape[1], p_lengths, p_counts, p_data.shape[0],
            data, data.shape[1], lengths, counts,
            np.ascontiguousarray(targets), targets.shape[0],
            w_sigma, w_tau, phi_sigma, phi_tau, out,
        )
        if rc != 0:
            raise MemoryError("stretch kernel scratch allocation failed")
        return out

    def many_vs_some_cc(
        p_data, p_lengths, p_counts, data, lengths, counts,
        flat_targets, offsets,
        w_sigma, w_tau, phi_sigma, phi_tau,
    ):
        out = np.empty(flat_targets.shape[0], dtype=np.float64)
        if out.size == 0:
            return out
        rc = lib.glove_many_vs_some(
            p_data, p_data.shape[1], p_lengths, p_counts, p_data.shape[0],
            data, data.shape[1], lengths, counts,
            np.ascontiguousarray(flat_targets), np.ascontiguousarray(offsets),
            w_sigma, w_tau, phi_sigma, phi_tau, out,
        )
        if rc != 0:
            raise MemoryError("stretch kernel scratch allocation failed")
        return out

    def _occ_u8(bucket_occ):
        # The C entries take the occupancy mask as uint8; a bool array
        # is one byte per element, so this is a free reinterpret.
        return np.ascontiguousarray(bucket_occ).view(np.uint8)

    def bounded_many_vs_all_cc(
        probe_slots, data, lengths, counts,
        hull, bucket_hull, bucket_occ,
        targets, thresholds,
        w_sigma, w_tau, phi_sigma, phi_tau,
    ):
        P = probe_slots.shape[0]
        best = np.empty(P, dtype=np.float64)
        best_idx = np.empty(P, dtype=np.int64)
        pruned = np.zeros(P, dtype=np.int64)
        if P == 0:
            return best, best_idx, pruned
        rc = lib.glove_bounded_many_vs_all(
            np.ascontiguousarray(probe_slots), P,
            data, data.shape[1], lengths, counts,
            np.ascontiguousarray(hull), hull.shape[1],
            np.ascontiguousarray(bucket_hull), _occ_u8(bucket_occ),
            bucket_occ.shape[1],
            np.ascontiguousarray(targets), targets.shape[0],
            np.ascontiguousarray(thresholds),
            w_sigma, w_tau, phi_sigma, phi_tau,
            best, best_idx, pruned,
        )
        if rc != 0:
            raise MemoryError("stretch kernel scratch allocation failed")
        return best, best_idx, pruned

    def bounded_many_vs_some_cc(
        probe_slots, data, lengths, counts,
        hull, bucket_hull, bucket_occ,
        flat_targets, offsets, thresholds, reverse, best_vals,
        w_sigma, w_tau, phi_sigma, phi_tau,
    ):
        P = probe_slots.shape[0]
        out = np.empty(flat_targets.shape[0], dtype=np.float64)
        pruned = np.zeros(P, dtype=np.int64)
        if P == 0 or out.size == 0:
            return out, pruned
        rc = lib.glove_bounded_many_vs_some(
            np.ascontiguousarray(probe_slots), P,
            data, data.shape[1], lengths, counts,
            np.ascontiguousarray(hull), hull.shape[1],
            np.ascontiguousarray(bucket_hull), _occ_u8(bucket_occ),
            bucket_occ.shape[1],
            np.ascontiguousarray(flat_targets), np.ascontiguousarray(offsets),
            np.ascontiguousarray(thresholds), _occ_u8(reverse),
            np.ascontiguousarray(best_vals),
            w_sigma, w_tau, phi_sigma, phi_tau,
            out, pruned,
        )
        if rc != 0:
            raise MemoryError("stretch kernel scratch allocation failed")
        return out, pruned

    return (
        one_vs_all_cc,
        pairwise_matrix_cc,
        many_vs_all_cc,
        many_vs_some_cc,
        bounded_many_vs_all_cc,
        bounded_many_vs_some_cc,
    )


if NUMBA_AVAILABLE:  # pragma: no cover - exercised via compiled-parity CI
    COMPILED_TIER = "numba"
    # nogil: the kernels touch no Python objects, so JIT-compiled calls
    # release the GIL — the property the engine's intra-batch thread
    # splitter relies on (same as ctypes calls on the cc tier).
    (
        _,
        one_vs_all_arrays,
        pairwise_matrix_arrays,
        many_vs_all_arrays,
        many_vs_some_arrays,
        bounded_many_vs_all_arrays,
        bounded_many_vs_some_arrays,
    ) = _build_kernels(njit(cache=True, nogil=True))
else:
    _cc = _bind_cc()
    if _cc is not None:
        COMPILED_TIER = "cc"
        (
            one_vs_all_arrays,
            pairwise_matrix_arrays,
            many_vs_all_arrays,
            many_vs_some_arrays,
            bounded_many_vs_all_arrays,
            bounded_many_vs_some_arrays,
        ) = _cc
    else:
        COMPILED_TIER = None
        one_vs_all_arrays = one_vs_all_pure
        pairwise_matrix_arrays = pairwise_matrix_pure
        many_vs_all_arrays = many_vs_all_pure
        many_vs_some_arrays = many_vs_some_pure
        bounded_many_vs_all_arrays = bounded_many_vs_all_pure
        bounded_many_vs_some_arrays = bounded_many_vs_some_pure

#: True when an accelerated binding (numba or cc) backs the ``compiled``
#: backend; the pure twins alone do not qualify.
COMPILED_AVAILABLE = COMPILED_TIER is not None
