"""Core data model and the GLOVE algorithm.

Public surface:

* data model -- :class:`~repro.core.sample.Sample`,
  :class:`~repro.core.fingerprint.Fingerprint`,
  :class:`~repro.core.dataset.FingerprintDataset`;
* anonymizability metric -- :func:`~repro.core.stretch.sample_stretch`,
  :func:`~repro.core.stretch.fingerprint_stretch`,
  :func:`~repro.core.kgap.kgap`;
* anonymization -- :func:`~repro.core.glove.glove` with
  :class:`~repro.core.config.GloveConfig`, and the method registry
  (:mod:`repro.core.anonymizer`) normalizing GLOVE and every baseline
  behind one protocol;
* compute substrate -- :class:`~repro.core.engine.StretchEngine` with
  :class:`~repro.core.config.ComputeConfig` and the backend registry
  (:func:`~repro.core.engine.register_backend`).
"""

from repro.core.config import (
    ComputeConfig,
    GloveConfig,
    StretchConfig,
    SuppressionConfig,
)
from repro.core.dataset import FingerprintDataset
from repro.core.engine import (
    SlotStore,
    StretchBackend,
    StretchEngine,
    available_backends,
    compute_pairwise_matrix,
    get_default_compute,
    register_backend,
    register_glove_driver,
    set_default_compute,
)
from repro.core.fingerprint import Fingerprint
from repro.core.glove import GloveResult, GloveStats, glove
from repro.core.kgap import (
    KGapResult,
    StretchComponentCache,
    kgap,
    kgap_sweep,
    stretch_decomposition,
)
from repro.core.merge import merge_fingerprints
from repro.core.pairwise import PaddedFingerprints, one_vs_all, pairwise_matrix
from repro.core.parallel import parallel_pairwise_matrix
from repro.core.partial import (
    PartialResult,
    partial_glove,
    time_window_model,
    top_locations_model,
)
from repro.core.reshape import reshape_fingerprint
from repro.core.sample import Sample
from repro.core.anonymizer import (
    AnonymizationResult,
    AnonymizationStats,
    Anonymizer,
    anonymize_dataset,
    available_anonymizers,
    get_anonymizer,
    register_anonymizer,
)
from repro.core.artifacts import ArtifactStore, canonical_key, dataset_digest, source_digest
from repro.core.pipeline import (
    Pipeline,
    cached_anonymize,
    cached_dataset,
    cached_glove,
    cached_kgap,
    cached_matrix,
    get_default_pipeline,
    set_default_pipeline,
)
from repro.core.scenarios import (
    Scenario,
    available_scenarios,
    get_scenario,
    register_scenario,
)
from repro.core.shard import ShardedBackend, partition_indices, resolve_shards, sharded_glove
from repro.core.stretch import fingerprint_stretch, sample_stretch, stretch_matrix
from repro.core.suppression import SuppressionStats, suppress_dataset

__all__ = [
    "Sample",
    "Fingerprint",
    "FingerprintDataset",
    "StretchConfig",
    "SuppressionConfig",
    "ComputeConfig",
    "GloveConfig",
    "StretchEngine",
    "StretchBackend",
    "SlotStore",
    "available_backends",
    "register_backend",
    "register_glove_driver",
    "compute_pairwise_matrix",
    "get_default_compute",
    "set_default_compute",
    "GloveResult",
    "GloveStats",
    "glove",
    "sharded_glove",
    "ShardedBackend",
    "partition_indices",
    "resolve_shards",
    "kgap",
    "kgap_sweep",
    "KGapResult",
    "StretchComponentCache",
    "stretch_decomposition",
    "sample_stretch",
    "fingerprint_stretch",
    "stretch_matrix",
    "merge_fingerprints",
    "reshape_fingerprint",
    "suppress_dataset",
    "SuppressionStats",
    "pairwise_matrix",
    "one_vs_all",
    "PaddedFingerprints",
    "ArtifactStore",
    "canonical_key",
    "dataset_digest",
    "source_digest",
    "Pipeline",
    "cached_anonymize",
    "cached_dataset",
    "cached_glove",
    "cached_kgap",
    "cached_matrix",
    "Anonymizer",
    "AnonymizationResult",
    "AnonymizationStats",
    "anonymize_dataset",
    "available_anonymizers",
    "get_anonymizer",
    "register_anonymizer",
    "get_default_pipeline",
    "set_default_pipeline",
    "Scenario",
    "available_scenarios",
    "get_scenario",
    "register_scenario",
    "parallel_pairwise_matrix",
    "partial_glove",
    "PartialResult",
    "top_locations_model",
    "time_window_model",
]
