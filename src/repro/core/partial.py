"""Partial-fingerprint k-anonymization (paper Section 7, extension).

Full-length anonymization is the paper's headline because it assumes
nothing about the adversary.  The paper notes that when higher ``k`` is
needed, "one may try to simplify the problem, by, e.g., making
assumptions about the attacker's knowledge ... [and] target partial
fingerprint anonymization, which is less expensive to achieve".

This module implements that suggested relaxation.  A *knowledge model*
selects, for every user, the sub-fingerprint the adversary is assumed
able to observe; GLOVE then k-anonymizes the dataset of
sub-fingerprints, and the generalization learned on each user's
sub-fingerprint is transferred to his remaining samples (which the
adversary, by assumption, never sees — they keep original granularity,
boosting utility).

Two knowledge models from the literature are provided:

* :func:`top_locations_model` — the adversary knows activity at the
  user's ``n`` most frequented locations (Zang & Bolot [5]);
* :func:`time_window_model` — the adversary can only observe a given
  daily time window (e.g. working hours).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import GloveConfig
from repro.core.dataset import FingerprintDataset
from repro.core.fingerprint import Fingerprint
from repro.core.glove import GloveResult, glove
from repro.core.sample import DT, DX, DY, T, X, Y

#: A knowledge model maps a fingerprint to a boolean mask over its
#: samples: True where the adversary can observe.
KnowledgeModel = Callable[[Fingerprint], np.ndarray]

MINUTES_PER_DAY = 24 * 60


def top_locations_model(n: int = 3) -> KnowledgeModel:
    """Adversary observes samples at the user's top-``n`` locations."""
    if n < 1:
        raise ValueError("n must be at least 1")

    def model(fp: Fingerprint) -> np.ndarray:
        keys = [tuple(row) for row in fp.data[:, [X, DX, Y, DY]]]
        counts = Counter(keys)
        top = {key for key, _ in counts.most_common(n)}
        return np.array([key in top for key in keys], dtype=bool)

    return model


def time_window_model(start_hour: int, end_hour: int) -> KnowledgeModel:
    """Adversary observes samples starting within ``[start, end)`` hours."""
    if not 0 <= start_hour < 24 or not 0 < end_hour <= 24 or start_hour >= end_hour:
        raise ValueError("need 0 <= start_hour < end_hour <= 24")

    def model(fp: Fingerprint) -> np.ndarray:
        hours = (fp.data[:, T] % MINUTES_PER_DAY) / 60.0
        return (hours >= start_hour) & (hours < end_hour)

    return model


@dataclass(frozen=True)
class PartialResult:
    """Outcome of partial k-anonymization.

    Attributes
    ----------
    dataset:
        Published dataset: one fingerprint per group over the *exposed*
        samples (generalized), with every user's unexposed samples
        appended at original granularity.
    exposed_result:
        The underlying full GLOVE result on the exposed
        sub-fingerprints.
    exposed_fraction:
        Share of original samples that were exposed (and generalized).
    n_users_without_exposure:
        Users whose knowledge-model mask selected no samples; they are
        trivially safe and published untouched.
    """

    dataset: FingerprintDataset
    exposed_result: GloveResult
    exposed_fraction: float
    n_users_without_exposure: int


def partial_glove(
    dataset: FingerprintDataset,
    model: KnowledgeModel,
    config: GloveConfig = GloveConfig(),
) -> PartialResult:
    """k-anonymize only the adversary-visible part of each fingerprint.

    The privacy guarantee is *conditional on the knowledge model*: an
    adversary whose side information is confined to the exposed samples
    cannot narrow any user below ``k`` candidates.  An adversary with
    broader knowledge may still re-identify users — this is exactly the
    trade-off the paper warns about, and why full-length anonymization
    is the default.
    """
    exposed_fps: List[Fingerprint] = []
    hidden_parts: Dict[str, np.ndarray] = {}
    untouched: List[Fingerprint] = []
    exposed_samples = 0
    total_samples = 0

    for fp in dataset:
        if fp.count != 1:
            raise ValueError("partial_glove expects per-subscriber input fingerprints")
        mask = np.asarray(model(fp), dtype=bool)
        if mask.shape != (fp.m,):
            raise ValueError(f"knowledge model returned bad mask for {fp.uid!r}")
        total_samples += fp.m
        exposed_samples += int(mask.sum())
        if not mask.any():
            untouched.append(fp)
            continue
        exposed_fps.append(Fingerprint(fp.uid, fp.data[mask]))
        hidden_parts[fp.uid] = fp.data[~mask]

    if len(exposed_fps) < config.k:
        raise ValueError(
            f"only {len(exposed_fps)} users have exposed samples; cannot reach k={config.k}"
        )

    exposed_result = glove(FingerprintDataset(exposed_fps, name="exposed"), config)

    out = FingerprintDataset(name=f"{dataset.name}-partial-k{config.k}")
    for group in exposed_result.dataset:
        # The group's generalized samples protect the exposed parts;
        # each member's hidden samples are re-attached untouched.
        hidden = [hidden_parts[m] for m in group.members if hidden_parts[m].size]
        rows = [group.data] + hidden
        out.add(
            Fingerprint(
                group.uid,
                np.vstack(rows),
                count=group.count,
                members=group.members,
            )
        )
    for fp in untouched:
        out.add(fp)

    return PartialResult(
        dataset=out,
        exposed_result=exposed_result,
        exposed_fraction=exposed_samples / total_samples if total_samples else 0.0,
        n_users_without_exposure=len(untouched),
    )


def exposed_anonymity(result: PartialResult) -> int:
    """Audit: smallest anonymity set over the exposed sub-fingerprints.

    An adversary restricted to the knowledge model faces at least this
    many candidates for any target.
    """
    return result.exposed_result.dataset.min_anonymity()
