"""Mobile fingerprints.

The *mobile fingerprint* of a subscriber is the complete, time-ordered
set of spatiotemporal samples logged for that subscriber during the
recording period (paper Section 2.1).  After GLOVE merging, one
fingerprint may represent a whole *group* of subscribers whose
fingerprints have been made identical; the ``count`` attribute tracks
the group size (the ``n_a`` weight of Eq. 4 and the ``a.k`` counter of
Alg. 1).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.core.sample import DT, NCOLS, T, Sample, samples_array, validate_sample_array


class Fingerprint:
    """A (possibly generalized) mobile fingerprint.

    Parameters
    ----------
    uid:
        Pseudo-identifier of the subscriber, or a tuple-joined label for
        merged groups.
    samples:
        Either an ``(m, 6)`` float64 array (columns ``x, dx, y, dy, t,
        dt``) or an iterable of :class:`~repro.core.sample.Sample`.
        Samples are stored sorted by interval start time.
    count:
        Number of subscribers hidden in this fingerprint (>= 1).
    members:
        Pseudo-identifiers of all subscribers represented; defaults to
        ``(uid,)``.
    """

    __slots__ = ("uid", "data", "count", "members")

    def __init__(
        self,
        uid: str,
        samples,
        count: int = 1,
        members: Sequence[str] = None,
    ):
        if isinstance(samples, np.ndarray):
            data = validate_sample_array(samples)
        else:
            data = validate_sample_array(samples_array(samples))
        if count < 1 or int(count) != count:
            raise ValueError(f"count must be a positive integer, got {count}")
        order = np.argsort(data[:, T], kind="stable")
        self.uid = str(uid)
        self.data = data[order]
        self.count = int(count)
        self.members: Tuple[str, ...] = tuple(members) if members is not None else (str(uid),)
        if len(self.members) != self.count:
            raise ValueError(
                f"fingerprint {uid!r}: count={count} but {len(self.members)} members listed"
            )

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.data.shape[0]

    def __iter__(self) -> Iterator[Sample]:
        for row in self.data:
            yield Sample.from_row(row)

    def __getitem__(self, i: int) -> Sample:
        return Sample.from_row(self.data[i])

    def __repr__(self) -> str:
        return f"Fingerprint(uid={self.uid!r}, m={len(self)}, count={self.count})"

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Number of samples (the fingerprint cardinality ``m_a`` of Eq. 10)."""
        return self.data.shape[0]

    @property
    def timespan_min(self) -> float:
        """Minutes between the start of the first and end of the last sample."""
        if self.m == 0:
            return 0.0
        return float(self.data[-1, T] + self.data[-1, DT] - self.data[0, T])

    def samples(self) -> List[Sample]:
        """All samples as scalar :class:`Sample` objects (time-ordered)."""
        return list(self)

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def same_trace(self, other: "Fingerprint", atol: float = 1e-6) -> bool:
        """Whether two fingerprints have identical sample arrays.

        Used to verify k-anonymity: after GLOVE, every member of a group
        shares one sample array, and two published fingerprints are
        indistinguishable iff ``same_trace`` holds.
        """
        if self.m != other.m:
            return False
        return bool(np.allclose(self.data, other.data, atol=atol, rtol=0.0))

    def trace_key(self, decimals: int = 6) -> bytes:
        """Hashable canonical encoding of the sample array.

        Two fingerprints with equal ``trace_key`` are indistinguishable
        at ``10**-decimals`` precision.
        """
        return np.round(self.data, decimals).tobytes()

    # ------------------------------------------------------------------
    # Derived fingerprints
    # ------------------------------------------------------------------
    def restrict_time(self, t_min: float, t_max: float, uid: str = None) -> "Fingerprint":
        """Fingerprint restricted to samples starting in ``[t_min, t_max)``."""
        mask = (self.data[:, T] >= t_min) & (self.data[:, T] < t_max)
        return Fingerprint(
            uid if uid is not None else self.uid,
            self.data[mask],
            count=self.count,
            members=self.members,
        )

    def with_samples(self, data: np.ndarray) -> "Fingerprint":
        """Copy of this fingerprint with a replaced sample array."""
        return Fingerprint(self.uid, data, count=self.count, members=self.members)
