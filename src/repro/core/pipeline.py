"""The staged compute-once pipeline over the artifact store.

Every expensive stage of the reproduction — CDR synthesis, GLOVE
anonymization, pairwise stretch matrices and the k-gap measure derived
from them — is requested through a :class:`Pipeline` instead of being
recomputed by each caller.  Stage outputs are content-addressed
artifacts (:mod:`repro.core.artifacts`):

* ``dataset``  -- parameter-addressed: (preset, n_users, days, seed,
  screening) plus a digest of the synthesis sources;
* ``glove``    -- content-addressed: the input dataset's record digest,
  the full :class:`~repro.core.config.GloveConfig`, and the
  *result-affecting* part of the compute substrate (see
  :func:`compute_result_signature`);
* ``anonymize`` -- the method-generic stage over the anonymizer
  registry (:mod:`repro.core.anonymizer`): method name + the method's
  own config + the dataset digest.  ``method="glove"`` delegates to the
  ``glove`` stage above (byte-identical artifacts and keys, DESIGN.md
  D8);
* ``matrix``   -- content-addressed: dataset digest + stretch config.
  The k-gap of any ``k`` derives from one cached matrix, exactly as
  the paper's Fig. 3b reuses a single Delta matrix.

Backends, chunk sizes, worker counts and pruning are *excluded* from
every key: DESIGN.md D4 guarantees their outputs byte-identical, so two
runs differing only in those knobs share artifacts.  The one exception
is the sharded glove driver at shards != 1, whose grouping is
shard-local (DESIGN.md D5); its runs are keyed separately.  Rationale
and invalidation rules live in DESIGN.md D6.

Entry points (``glove-repro``, the ``glove`` CLI, the benchmark suite)
install a process-wide default pipeline via
:func:`set_default_pipeline`; the ``cached_*`` helpers route through it
so the thirteen experiment modules need no per-function plumbing —
mirroring :func:`repro.core.engine.set_default_compute`.
"""

from __future__ import annotations

import weakref
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.core.artifacts import (
    ArtifactStore,
    canonical_key,
    dataset_digest,
    source_digest,
)
from repro.core.config import ComputeConfig, GloveConfig, StretchConfig
from repro.core.dataset import FingerprintDataset
from repro.core.engine import get_default_compute, get_glove_driver
from repro.core.kgap import KGapResult, kgap as _kgap
from repro.obs import get_metrics

#: Sources whose edits invalidate synthesized datasets.
DATASET_SOURCES = (
    "repro.cdr",
    "repro.geo",
    "repro.core.sample",
    "repro.core.fingerprint",
    "repro.core.dataset",
)

#: Sources whose edits invalidate GLOVE runs and stretch matrices.
CORE_SOURCES = ("repro.core",)

#: Sources whose edits invalidate replayed feeds and streaming runs.
STREAM_SOURCES = ("repro.core", "repro.stream")


def compute_result_signature(
    compute: Optional[ComputeConfig], n_fingerprints: Optional[int] = None
) -> Dict[str, Any]:
    """The result-affecting projection of a compute config.

    Kernel-level backends are value-transparent (DESIGN.md D4): numpy,
    process and auto produce byte-identical results, so they map to the
    empty signature and share artifacts.  A backend with a registered
    *glove driver* may change results (the sharded tier's grouping is
    shard-local, DESIGN.md D5) — except at one shard, which is
    byte-identical to the unsharded path and normalizes back to the
    empty signature.

    With ``n_fingerprints`` given, the sharded tier's shard count is
    resolved to its *effective* value for that population (auto picks
    and clamping are deterministic in ``n``), so e.g. ``--backend
    sharded`` over a population small enough for a single shard shares
    the unsharded artifact.
    """
    compute = compute if compute is not None else get_default_compute()
    if get_glove_driver(compute.backend) is None:
        return {}
    shards = compute.shards
    if compute.backend == "sharded" and n_fingerprints is not None:
        from repro.core.shard import resolve_shards

        shards = resolve_shards(compute, n_fingerprints)
    if shards == 1:
        return {}
    return {
        "backend": compute.backend,
        "shards": shards,
        "shard_strategy": compute.shard_strategy,
    }


@dataclass
class StageStats:
    """Hit/compute counters of one pipeline stage."""

    computed: int = 0
    memo_hits: int = 0
    disk_hits: int = 0
    computed_labels: Counter = field(default_factory=Counter)

    @property
    def hits(self) -> int:
        """Requests served without recomputing."""
        return self.memo_hits + self.disk_hits

    @property
    def requests(self) -> int:
        """Total requests seen by the stage."""
        return self.computed + self.hits


class Pipeline:
    """Staged dataset -> anonymization -> derived-metric compute graph.

    Parameters
    ----------
    store:
        Backing :class:`~repro.core.artifacts.ArtifactStore`; defaults
        to :meth:`ArtifactStore.from_env`.
    enabled:
        ``False`` turns the pipeline into a pass-through that computes
        every request fresh (the ``--no-cache`` path) — byte-identical
        outputs, no reuse.
    """

    def __init__(self, store: Optional[ArtifactStore] = None, enabled: bool = True):
        self.store = store if store is not None else ArtifactStore.from_env()
        self.enabled = enabled
        self.stats: Dict[str, StageStats] = {}
        self._digests: "weakref.WeakKeyDictionary[FingerprintDataset, str]" = (
            weakref.WeakKeyDictionary()
        )

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _stage(self, name: str) -> StageStats:
        return self.stats.setdefault(name, StageStats())

    def _fetch(self, stage: str, params: Dict[str, Any], label: str, compute: Callable[[], Any]) -> Any:
        stats = self._stage(stage)
        metrics = get_metrics()
        if not self.enabled:
            stats.computed += 1
            stats.computed_labels[label] += 1
            with metrics.span(f"pipeline.{stage}.wall_s"):
                value = compute()
            metrics.counter(f"pipeline.{stage}.computed").inc()
            metrics.counter("artifact.misses").inc()
            return value
        key = canonical_key(stage, params)
        with metrics.span(f"pipeline.{stage}.wall_s"):
            value, origin = self.store.fetch(stage, key, compute)
        if origin == "computed":
            stats.computed += 1
            stats.computed_labels[label] += 1
            metrics.counter(f"pipeline.{stage}.computed").inc()
            metrics.counter("artifact.misses").inc()
        elif origin == "memo":
            stats.memo_hits += 1
            metrics.counter(f"pipeline.{stage}.memo_hits").inc()
            metrics.counter("artifact.hits").inc()
        else:
            stats.disk_hits += 1
            metrics.counter(f"pipeline.{stage}.disk_hits").inc()
            metrics.counter("artifact.hits").inc()
        return value

    def digest(self, dataset: FingerprintDataset) -> str:
        """Content digest of a dataset, memoized per object.

        Pipeline inputs are treated as immutable: mutating a dataset
        after it has been digested would serve stale artifacts.
        """
        cached = self._digests.get(dataset)
        if cached is None:
            cached = dataset_digest(dataset)
            self._digests[dataset] = cached
        return cached

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------
    def dataset(
        self,
        preset: str,
        n_users: int = 300,
        days: int = 7,
        seed: int = 0,
        screened: bool = True,
    ) -> FingerprintDataset:
        """Stage 1: a synthesized preset dataset (compute-once)."""
        from repro.cdr.datasets import synthesize

        return self._fetch(
            "dataset",
            {
                "preset": preset,
                "n_users": n_users,
                "days": days,
                "seed": seed,
                "screened": screened,
                "sources": source_digest(*DATASET_SOURCES),
            },
            label=f"{preset}/n{n_users}/d{days}/s{seed}",
            compute=lambda: synthesize(
                preset, n_users=n_users, days=days, seed=seed, screened=screened
            ),
        )

    def glove(
        self,
        dataset: FingerprintDataset,
        config: GloveConfig = GloveConfig(),
        compute: Optional[ComputeConfig] = None,
    ):
        """Stage 2 (GLOVE form): a GLOVE run over any dataset.

        Returns the full :class:`~repro.core.glove.GloveResult`
        (anonymized population plus run statistics).
        """
        from repro.core.glove import glove

        digest = self.digest(dataset)
        return self._fetch(
            "glove",
            {
                "dataset": digest,
                "config": config,
                "compute": compute_result_signature(compute, len(dataset)),
                "sources": source_digest(*CORE_SOURCES),
            },
            label=f"{digest[:10]}/k{config.k}",
            compute=lambda: glove(dataset, config, compute),
        )

    def anonymize(
        self,
        dataset: FingerprintDataset,
        config=None,
        compute: Optional[ComputeConfig] = None,
        method: str = "glove",
    ):
        """Stage 2: anonymize a dataset with any registered method.

        Returns a normalized
        :class:`~repro.core.anonymizer.AnonymizationResult` whatever
        the method.  Keys fold in the method name and the method's own
        config (DESIGN.md D8).  ``method="glove"`` routes through the
        historical ``glove`` stage with the suppression thresholds
        stripped from the key and re-applied as the byte-identical
        post-filter of :func:`~repro.core.anonymizer.
        apply_glove_suppression` — so one greedy-loop artifact serves
        every suppression setting and all pre-existing cache keys
        survive.  Baselines ignore the compute substrate entirely, so
        it never enters their keys.
        """
        from repro.core.anonymizer import (
            get_anonymizer,
            normalize_glove,
            strip_suppression,
        )

        anonymizer = get_anonymizer(method)
        if method == "glove":
            config = config if config is not None else GloveConfig()
            base = strip_suppression(config)
            return normalize_glove(dataset, self.glove(dataset, base, compute), config)
        config = config if config is not None else anonymizer.make_config()
        digest = self.digest(dataset)
        return self._fetch(
            "anonymize",
            {
                "method": method,
                "dataset": digest,
                "config": config,
                "sources": source_digest(*anonymizer.sources),
            },
            label=f"{method}/{digest[:10]}/k{getattr(config, 'k', '-')}",
            # The compute substrate is excluded from the key, so it must
            # not reach the run either: a registered method whose output
            # varied with ComputeConfig would otherwise serve one
            # config's artifact for another's request.
            compute=lambda: anonymizer.run(dataset, config, None),
        )

    def matrix(
        self,
        dataset: FingerprintDataset,
        config: StretchConfig = StretchConfig(),
        compute: Optional[ComputeConfig] = None,
    ) -> np.ndarray:
        """Stage 3: the pairwise Delta matrix (content-addressed).

        Byte-identical across every backend (DESIGN.md D4), so the
        compute substrate never enters the key.
        """
        from repro.core.engine import compute_pairwise_matrix

        digest = self.digest(dataset)
        return self._fetch(
            "matrix",
            {
                "dataset": digest,
                "config": config,
                "sources": source_digest(*CORE_SOURCES),
            },
            label=digest[:10],
            compute=lambda: compute_pairwise_matrix(list(dataset), config, compute),
        )

    def kgap(
        self,
        dataset: FingerprintDataset,
        k: int = 2,
        config: StretchConfig = StretchConfig(),
        compute: Optional[ComputeConfig] = None,
    ) -> KGapResult:
        """Stage 4: the k-gap measure, derived from the cached matrix.

        The derivation (a k-smallest selection per row) is cheap, so
        only the matrix is stored; every ``k`` shares it.
        """
        return _kgap(dataset, k=k, config=config, matrix=self.matrix(dataset, config, compute))

    def feed(
        self,
        dataset: FingerprintDataset,
        max_jitter_min: float = 0.0,
        seed: int = 0,
    ):
        """Stage 5: an arrival-ordered replay of a dataset (content-addressed).

        Returns the :class:`repro.stream.feed.ReplayFeed` of the
        dataset — the event table every streaming run of that dataset
        consumes, shared across window/k sweeps (e.g. the
        ``stream_eval`` experiment replays each dataset exactly once).
        """
        from repro.stream.feed import replay_dataset

        digest = self.digest(dataset)
        return self._fetch(
            "feed",
            {
                "dataset": digest,
                "max_jitter_min": max_jitter_min,
                "seed": seed,
                "sources": source_digest(*STREAM_SOURCES),
            },
            label=f"{digest[:10]}/j{max_jitter_min:g}",
            compute=lambda: replay_dataset(
                dataset, max_jitter_min=max_jitter_min, seed=seed, name=f"{dataset.name}-feed"
            ),
        )

    def stream(
        self,
        dataset: FingerprintDataset,
        config: GloveConfig = GloveConfig(),
        stream=None,
        compute: Optional[ComputeConfig] = None,
        max_jitter_min: float = 0.0,
        seed: int = 0,
    ):
        """Stage 6: a windowed streaming GLOVE run (content-addressed).

        Returns the full :class:`repro.stream.driver.StreamResult`.
        The key folds in the dataset digest, both configs, the feed
        replay parameters and — like the ``glove`` stage — only the
        result-affecting projection of the compute substrate.
        """
        from repro.stream.driver import stream_glove

        digest = self.digest(dataset)
        if stream is None:
            from repro.stream.windows import StreamConfig

            stream = StreamConfig(window_min=24 * 60.0)
        return self._fetch(
            "stream",
            {
                "dataset": digest,
                "config": config,
                "stream": stream,
                "max_jitter_min": max_jitter_min,
                "seed": seed,
                "compute": compute_result_signature(compute),
                "sources": source_digest(*STREAM_SOURCES),
            },
            label=f"{digest[:10]}/k{config.k}/w{stream.window_min:g}",
            compute=lambda: stream_glove(
                dataset,
                config,
                stream,
                compute,
                feed=self.feed(dataset, max_jitter_min=max_jitter_min, seed=seed),
            ),
        )


# ----------------------------------------------------------------------
# Process-wide default pipeline
# ----------------------------------------------------------------------
_default_pipeline: Optional[Pipeline] = None


def get_default_pipeline() -> Pipeline:
    """The process-wide pipeline, lazily built from the environment."""
    global _default_pipeline
    if _default_pipeline is None:
        _default_pipeline = Pipeline()
    return _default_pipeline


def set_default_pipeline(pipeline: Optional[Pipeline]) -> Optional[Pipeline]:
    """Install a new default pipeline; returns the previous one.

    ``None`` resets to lazy re-initialization from the environment.
    """
    global _default_pipeline
    old = _default_pipeline
    _default_pipeline = pipeline
    return old


def cached_dataset(
    preset: str, n_users: int = 300, days: int = 7, seed: int = 0, screened: bool = True
) -> FingerprintDataset:
    """:meth:`Pipeline.dataset` on the default pipeline."""
    return get_default_pipeline().dataset(
        preset, n_users=n_users, days=days, seed=seed, screened=screened
    )


def cached_glove(
    dataset: FingerprintDataset,
    config: GloveConfig = GloveConfig(),
    compute: Optional[ComputeConfig] = None,
):
    """:meth:`Pipeline.glove` on the default pipeline.

    A thin delegate kept for the experiment modules: same stage, same
    keys, same :class:`~repro.core.glove.GloveResult` as ever.  The
    method-generic entry point is :func:`cached_anonymize`.
    """
    return get_default_pipeline().glove(dataset, config, compute)


def cached_anonymize(
    dataset: FingerprintDataset,
    method: str = "glove",
    config=None,
    compute: Optional[ComputeConfig] = None,
):
    """:meth:`Pipeline.anonymize` on the default pipeline."""
    return get_default_pipeline().anonymize(dataset, config, compute, method=method)


def cached_matrix(
    dataset: FingerprintDataset,
    config: StretchConfig = StretchConfig(),
    compute: Optional[ComputeConfig] = None,
) -> np.ndarray:
    """:meth:`Pipeline.matrix` on the default pipeline."""
    return get_default_pipeline().matrix(dataset, config, compute)


def cached_kgap(
    dataset: FingerprintDataset,
    k: int = 2,
    config: StretchConfig = StretchConfig(),
    compute: Optional[ComputeConfig] = None,
) -> KGapResult:
    """:meth:`Pipeline.kgap` on the default pipeline."""
    return get_default_pipeline().kgap(dataset, k=k, config=config, compute=compute)


def cached_feed(
    dataset: FingerprintDataset, max_jitter_min: float = 0.0, seed: int = 0
):
    """:meth:`Pipeline.feed` on the default pipeline."""
    return get_default_pipeline().feed(dataset, max_jitter_min=max_jitter_min, seed=seed)


def cached_stream(
    dataset: FingerprintDataset,
    config: GloveConfig = GloveConfig(),
    stream=None,
    compute: Optional[ComputeConfig] = None,
    max_jitter_min: float = 0.0,
    seed: int = 0,
):
    """:meth:`Pipeline.stream` on the default pipeline."""
    return get_default_pipeline().stream(
        dataset, config, stream, compute, max_jitter_min=max_jitter_min, seed=seed
    )


# ----------------------------------------------------------------------
# CLI plumbing (shared by glove-repro and the glove subcommands)
# ----------------------------------------------------------------------
def add_pipeline_arguments(parser) -> None:
    """Attach the shared artifact-store flags to an argparse parser."""
    from repro.core.artifacts import available_artifact_backends

    parser.add_argument(
        "--artifact-dir",
        default=None,
        help="artifact store directory (default: $REPRO_ARTIFACT_DIR or "
        "~/.cache/repro)",
    )
    parser.add_argument(
        "--artifact-backend",
        choices=available_artifact_backends(),
        default=None,
        help="artifact persistence backend (default: $REPRO_ARTIFACT_BACKEND "
        "or disk; sqlite is safest for many concurrent workers on one host)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="compute every stage fresh; results are byte-identical to "
        "the cached path",
    )


def pipeline_from_args(args) -> Pipeline:
    """Build a :class:`Pipeline` from parsed ``add_pipeline_arguments`` flags.

    Flags beat environment: ``--no-cache`` wins over everything, an
    explicit ``--artifact-dir`` enables the persistent layer even under
    ``REPRO_CACHE=0``, and ``--artifact-backend`` beats
    ``REPRO_ARTIFACT_BACKEND``.
    """
    if getattr(args, "no_cache", False):
        return Pipeline(ArtifactStore(root=None), enabled=False)
    root = getattr(args, "artifact_dir", None)
    return Pipeline(
        ArtifactStore.from_env(
            root=root,
            enabled=True if root is not None else None,
            backend=getattr(args, "artifact_backend", None),
        )
    )
