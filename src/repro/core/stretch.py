"""Sample and fingerprint stretch efforts (paper Eq. 1-10).

The *sample stretch effort* ``delta_ab(i, j)`` measures the
spatiotemporal loss of accuracy required to merge two samples through
generalization.  It combines a spatial loss ``phi_sigma`` and a temporal
loss ``phi_tau``, each computed from the left/right stretches that each
sample's bounding box must undergo to cover the other's, weighted by the
number of subscribers ``n_a``, ``n_b`` already hidden in each
fingerprint, and saturated at the ``phi_max`` thresholds.

This module contains the scalar reference implementation (used in tests
as ground truth) and the pairwise matrix form used by the merge
operation.  The bulk one-vs-all kernels live in
:mod:`repro.core.pairwise`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.config import StretchConfig
from repro.core.sample import DT, DX, DY, Sample, T, X, Y


# ----------------------------------------------------------------------
# Scalar reference implementation (Eq. 1-9)
# ----------------------------------------------------------------------
def left_right_stretch_1d(lo_a: float, ext_a: float, lo_b: float, ext_b: float) -> Tuple[float, float]:
    """Left and right stretch of interval ``a`` to cover interval ``b``.

    One-dimensional building block of Eq. 5-6 and Eq. 8-9: how far the
    lower edge of ``[lo_a, lo_a+ext_a]`` must move left, and the upper
    edge right, to cover ``[lo_b, lo_b+ext_b]``.
    """
    left = lo_a - min(lo_a, lo_b)
    right = max(lo_a + ext_a, lo_b + ext_b) - lo_a - ext_a
    return left, right


def phi_star_sigma(sa: Sample, sb: Sample, n_a: int = 1, n_b: int = 1) -> float:
    """Raw spatial stretch of Eq. 4 (before saturation)."""
    la_x, ra_x = left_right_stretch_1d(sa.x, sa.dx, sb.x, sb.dx)
    la_y, ra_y = left_right_stretch_1d(sa.y, sa.dy, sb.y, sb.dy)
    lb_x, rb_x = left_right_stretch_1d(sb.x, sb.dx, sa.x, sa.dx)
    lb_y, rb_y = left_right_stretch_1d(sb.y, sb.dy, sa.y, sa.dy)
    w_a = n_a / (n_a + n_b)
    w_b = n_b / (n_a + n_b)
    return (la_x + ra_x + la_y + ra_y) * w_a + (lb_x + rb_x + lb_y + rb_y) * w_b


def phi_star_tau(sa: Sample, sb: Sample, n_a: int = 1, n_b: int = 1) -> float:
    """Raw temporal stretch of Eq. 7 (before saturation)."""
    la, ra = left_right_stretch_1d(sa.t, sa.dt, sb.t, sb.dt)
    lb, rb = left_right_stretch_1d(sb.t, sb.dt, sa.t, sa.dt)
    w_a = n_a / (n_a + n_b)
    w_b = n_b / (n_a + n_b)
    return (la + ra) * w_a + (lb + rb) * w_b


def sample_stretch(
    sa: Sample,
    sb: Sample,
    n_a: int = 1,
    n_b: int = 1,
    config: StretchConfig = StretchConfig(),
) -> float:
    """Sample stretch effort ``delta_ab(i, j)`` of Eq. 1, in ``[0, 1]``."""
    comps = sample_stretch_components(sa, sb, n_a, n_b, config)
    return comps[0] + comps[1]

def sample_stretch_components(
    sa: Sample,
    sb: Sample,
    n_a: int = 1,
    n_b: int = 1,
    config: StretchConfig = StretchConfig(),
) -> Tuple[float, float]:
    """Weighted spatial and temporal terms ``(w_sigma*phi_sigma, w_tau*phi_tau)``.

    Their sum is the sample stretch effort; the decomposition feeds the
    Section 5.3 analysis (sets ``S_a`` and ``T_a``).
    """
    ps = max(phi_star_sigma(sa, sb, n_a, n_b), 0.0)
    pt = max(phi_star_tau(sa, sb, n_a, n_b), 0.0)
    phi_s = min(ps / config.phi_max_sigma_m, 1.0)
    phi_t = min(pt / config.phi_max_tau_min, 1.0)
    return (config.w_sigma * phi_s, config.w_tau * phi_t)


# ----------------------------------------------------------------------
# Pairwise matrix form
# ----------------------------------------------------------------------
def stretch_matrix(
    a: np.ndarray,
    b: np.ndarray,
    n_a: int = 1,
    n_b: int = 1,
    config: StretchConfig = StretchConfig(),
    components: bool = False,
):
    """Sample stretch efforts between all sample pairs of two fingerprints.

    Parameters
    ----------
    a, b:
        Sample arrays of shape ``(ma, 6)`` and ``(mb, 6)``.
    n_a, n_b:
        Subscribers hidden in each fingerprint (Eq. 4 weights).
    components:
        When true, return ``(delta, spatial, temporal)`` where
        ``delta = spatial + temporal``; otherwise just ``delta``.

    Returns
    -------
    ``(ma, mb)`` float64 array(s).

    Notes
    -----
    The raw stretch simplifies to *union extent minus count-weighted own
    extents*: for axis x, ``l(a,b) + r(a,b) = U_x - dx_a`` where ``U_x``
    is the union extent, hence Eq. 4 reduces to
    ``(U_x + U_y) - w_a (dx_a + dy_a) - w_b (dx_b + dy_b)``.
    """
    w_a = n_a / (n_a + n_b)
    w_b = n_b / (n_a + n_b)

    ax, adx = a[:, X][:, None], a[:, DX][:, None]
    ay, ady = a[:, Y][:, None], a[:, DY][:, None]
    at, adt = a[:, T][:, None], a[:, DT][:, None]
    bx, bdx = b[:, X][None, :], b[:, DX][None, :]
    by, bdy = b[:, Y][None, :], b[:, DY][None, :]
    bt, bdt = b[:, T][None, :], b[:, DT][None, :]

    ux = np.maximum(ax + adx, bx + bdx) - np.minimum(ax, bx)
    uy = np.maximum(ay + ady, by + bdy) - np.minimum(ay, by)
    ut = np.maximum(at + adt, bt + bdt) - np.minimum(at, bt)

    # Clamp at zero: identical samples can produce raw stretches of
    # -1e-15 through floating-point cancellation.  Weighted own-extent
    # terms are summed before subtracting so a role swap of a and b is
    # bitwise neutral (matches repro.core.pairwise.one_vs_all).
    raw_s = np.maximum((ux + uy) - (w_a * (adx + ady) + w_b * (bdx + bdy)), 0.0)
    raw_t = np.maximum(ut - (w_a * adt + w_b * bdt), 0.0)

    spatial = config.w_sigma * np.minimum(raw_s / config.phi_max_sigma_m, 1.0)
    temporal = config.w_tau * np.minimum(raw_t / config.phi_max_tau_min, 1.0)
    delta = spatial + temporal
    if components:
        return delta, spatial, temporal
    return delta


def fingerprint_stretch(
    a: np.ndarray,
    b: np.ndarray,
    n_a: int = 1,
    n_b: int = 1,
    config: StretchConfig = StretchConfig(),
) -> float:
    """Fingerprint stretch effort ``Delta_ab`` of Eq. 10.

    For each sample of the *longer* fingerprint, find the sample of the
    shorter one at minimum stretch effort; ``Delta_ab`` is the average
    of those minima.

    Equal-length pairs are a gap in the paper's Eq. 10: looping over
    ``a`` or over ``b`` gives different values.  This implementation
    averages the two directions in that case, which restores the
    symmetry the GLOVE stretch matrix relies on (documented deviation,
    see DESIGN.md).
    """
    if a.shape[0] == 0 or b.shape[0] == 0:
        raise ValueError("cannot compute stretch effort of an empty fingerprint")
    delta = stretch_matrix(a, b, n_a, n_b, config)
    if a.shape[0] > b.shape[0]:
        return float(delta.min(axis=1).mean())
    if b.shape[0] > a.shape[0]:
        return float(delta.min(axis=0).mean())
    return float((delta.min(axis=1).mean() + delta.min(axis=0).mean()) / 2.0)


def matched_stretch_components(
    a: np.ndarray,
    b: np.ndarray,
    n_a: int = 1,
    n_b: int = 1,
    config: StretchConfig = StretchConfig(),
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-sample matched stretch decomposition used by the Section 5.3 analysis.

    For each sample of the longer fingerprint, match it to the
    minimum-effort sample of the shorter one (as Eq. 10 does) and report
    the matched ``(delta, spatial, temporal)`` triplets, each an array of
    length ``max(ma, mb)``.  The spatial values populate ``S_a`` and the
    temporal values ``T_a`` in the paper's notation.
    """
    delta, spatial, temporal = stretch_matrix(a, b, n_a, n_b, config, components=True)
    if a.shape[0] >= b.shape[0]:
        j = delta.argmin(axis=1)
        i = np.arange(a.shape[0])
        return delta[i, j], spatial[i, j], temporal[i, j]
    i = delta.argmin(axis=0)
    j = np.arange(b.shape[0])
    return delta[i, j], spatial[i, j], temporal[i, j]
