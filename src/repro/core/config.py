"""Configuration of the stretch-effort metric and of GLOVE.

The paper fixes two saturation thresholds for the loss-of-accuracy
functions (footnote 3): ``phi_max_sigma`` = 20 km and ``phi_max_tau`` =
8 hours.  Beyond these values a sample is considered uninformative and
the corresponding loss function saturates at 1.  The ratio between the
two thresholds also sets the space/time exchange rate: a spatial
generalization of ~0.5 km weighs as much as a temporal generalization
of ~15 min.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class StretchConfig:
    """Parameters of the sample/fingerprint stretch effort (Eq. 1-3).

    Attributes
    ----------
    phi_max_sigma_m:
        Spatial saturation threshold in metres (paper: 20 km).  A spatial
        stretch of this magnitude yields the maximum spatial loss of 1.
    phi_max_tau_min:
        Temporal saturation threshold in minutes (paper: 8 hours).
    w_sigma, w_tau:
        Normalization weights of the spatial and temporal contributions
        in Eq. 1.  The paper uses 1/2 and 1/2 so that the sample stretch
        effort lies in [0, 1].
    """

    phi_max_sigma_m: float = 20_000.0
    phi_max_tau_min: float = 8.0 * 60.0
    w_sigma: float = 0.5
    w_tau: float = 0.5

    def __post_init__(self) -> None:
        if self.phi_max_sigma_m <= 0:
            raise ValueError("phi_max_sigma_m must be positive")
        if self.phi_max_tau_min <= 0:
            raise ValueError("phi_max_tau_min must be positive")
        if self.w_sigma < 0 or self.w_tau < 0:
            raise ValueError("weights must be non-negative")
        if abs(self.w_sigma + self.w_tau - 1.0) > 1e-9:
            raise ValueError("w_sigma + w_tau must equal 1 so delta lies in [0, 1]")


@dataclass(frozen=True)
class SuppressionConfig:
    """Thresholds for sample suppression (paper Section 7.1).

    A generalized sample is discarded when its spatial extent exceeds
    ``spatial_threshold_m`` (on either axis) or its temporal extent
    exceeds ``temporal_threshold_min``.  ``None`` disables the
    corresponding check.  The paper's Table 2 uses 15 km and 6 hours.

    ``keep_at_least_one`` prevents a fingerprint from being suppressed
    into nothingness: when every sample of a group exceeds the
    thresholds, the least-stretched one is retained.  The paper reports
    zero discarded fingerprints for GLOVE at its (much larger) dataset
    scale; this safeguard preserves that property at reproduction scale
    (see DESIGN.md).
    """

    spatial_threshold_m: float = None
    temporal_threshold_min: float = None
    keep_at_least_one: bool = True

    def __post_init__(self) -> None:
        if self.spatial_threshold_m is not None and self.spatial_threshold_m <= 0:
            raise ValueError("spatial_threshold_m must be positive or None")
        if self.temporal_threshold_min is not None and self.temporal_threshold_min <= 0:
            raise ValueError("temporal_threshold_min must be positive or None")

    @property
    def enabled(self) -> bool:
        """Whether any suppression threshold is active."""
        return self.spatial_threshold_m is not None or self.temporal_threshold_min is not None


@dataclass(frozen=True)
class GloveConfig:
    """Full GLOVE configuration.

    Attributes
    ----------
    k:
        Target anonymity level: every published fingerprint must hide at
        least ``k`` subscribers.
    stretch:
        Parameters of the stretch-effort metric.
    suppression:
        Optional sample-suppression thresholds applied to the output.
    reshape:
        Whether to run the reshaping pass that resolves temporal overlaps
        in merged fingerprints (paper Fig. 6b).  On by default, as in the
        paper.
    """

    k: int = 2
    stretch: StretchConfig = field(default_factory=StretchConfig)
    suppression: SuppressionConfig = field(default_factory=SuppressionConfig)
    reshape: bool = True

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ValueError(f"k must be at least 2, got {self.k}")
