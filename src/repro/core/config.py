"""Configuration of the stretch-effort metric and of GLOVE.

The paper fixes two saturation thresholds for the loss-of-accuracy
functions (footnote 3): ``phi_max_sigma`` = 20 km and ``phi_max_tau`` =
8 hours.  Beyond these values a sample is considered uninformative and
the corresponding loss function saturates at 1.  The ratio between the
two thresholds also sets the space/time exchange rate: a spatial
generalization of ~0.5 km weighs as much as a temporal generalization
of ~15 min.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, field
from typing import Optional, Union

#: Fingerprints per broadcast chunk in the bulk stretch kernels; bounds
#: the peak memory of a kernel invocation.  Single source of truth —
#: :mod:`repro.core.pairwise` and :class:`ComputeConfig` both read it.
DEFAULT_CHUNK = 256


def env_float(name: str, default: Union[int, float]) -> float:
    """A float environment knob that degrades, never errors.

    Tuning knobs read from the environment (cache bounds, benchmark
    scales) must not crash a CLI on a typo: a malformed value falls
    back to the documented default with a one-line warning (the
    DESIGN.md D6 contract).  Flags that *select semantics* still
    validate strictly — this helper is for knobs only.
    """
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return float(default)
    try:
        return float(raw)
    except ValueError:
        print(
            f"warning: ignoring malformed {name}={raw!r}; "
            f"using default {default:g}",
            file=sys.stderr,
        )
        return float(default)


def env_int(name: str, default: int) -> int:
    """Integer twin of :func:`env_float`: degrade to default, warn once."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return int(default)
    try:
        return int(raw)
    except ValueError:
        print(
            f"warning: ignoring malformed {name}={raw!r}; "
            f"using default {default}",
            file=sys.stderr,
        )
        return int(default)


@dataclass(frozen=True)
class ComputeConfig:
    """Configuration of the stretch-compute substrate.

    Selects and parameterizes the :class:`repro.core.engine.StretchEngine`
    backend that executes the bulk Eq. 10 evaluations.  Kept separate
    from :class:`GloveConfig` on purpose: the latter describes *what* to
    compute (the anonymization semantics), this class describes *how*
    (which hardware tier, how much memory, whether to prune).  Two runs
    that differ only in their ``ComputeConfig`` produce byte-identical
    results.

    Attributes
    ----------
    backend:
        Name of a registered compute backend: ``"numpy"`` (single
        process, chunked broadcasting), ``"compiled"`` (JIT/C scalar
        kernels over the same padded layout; requires the ``[compiled]``
        extra or a system C compiler), ``"process"`` (multi-core pool),
        ``"auto"`` (pick by workload size, preferring the compiled tier
        when available), or ``"sharded"`` (partition the population,
        anonymize shards concurrently, repair the boundaries).  All
        tiers are byte-identical (DESIGN.md D9).  Extensible through
        :func:`repro.core.engine.register_backend`.
    chunk:
        Fingerprints per broadcast chunk in the bulk kernels.
    workers:
        Process-pool size for the ``process`` backend and shard-level
        pool size for the ``sharded`` backend; ``None`` means
        ``min(cpu_count, 8)``.
    shards:
        Shard count of the ``sharded`` backend; ``None`` picks one from
        the population size (roughly one shard per
        :data:`repro.core.shard.AUTO_SHARD_TARGET` fingerprints).
        Ignored by the other backends.
    shard_strategy:
        Population partitioning rule of the ``sharded`` backend:
        ``"time"`` (activity-midpoint locality, the default) or
        ``"hash"`` (deterministic uid hash, the locality-free
        fallback).
    pruning:
        Enable the bounding-box lower-bound pruning of exact Eq. 10
        evaluations in the GLOVE nearest-neighbour search.  Pruning is
        exact (never changes results); disable only for debugging or
        benchmarking the unpruned path.
    lb_bucket_minutes:
        Width of the time buckets of the level-1 lower bound (per-slot
        spatial hulls per time bucket).
    lb_max_buckets:
        Cap on the number of time buckets per slot (bucket width is
        stretched when the recording period is long).
    parallel_matrix_threshold:
        ``auto`` backend: minimum fingerprint count at which full
        pairwise-matrix builds are dispatched to the process pool.
    parallel_targets_threshold:
        ``process``/``auto`` backends: minimum number of targets in a
        one-vs-all call before it is sharded across the pool (below it,
        pool overhead exceeds kernel time and the call runs inline).
    kernel_threads:
        Worker threads splitting a batched multi-probe kernel call in
        the ``compiled`` backend.  Probes are independent, so the split
        is byte-identical by construction at any thread count (DESIGN.md
        D11); the native kernels release the GIL, so threads scale on
        multi-core hosts without process-pool pickling.  ``"auto"``
        resolves to the machine's CPU count at backend construction —
        the safe default for portable configs, since oversubscribing a
        small machine pessimizes (the 1-CPU large_n sweep measured
        18.454 s at 1 thread vs 23.908 s at 8).  ``None`` reads the
        ``REPRO_KERNEL_THREADS`` environment knob (integer or ``auto``,
        default 1).  Composes with shard-level ``workers``: each shard
        process splits its own probe batches.
    """

    backend: str = "auto"
    chunk: int = DEFAULT_CHUNK
    workers: Optional[int] = None
    shards: Optional[int] = None
    shard_strategy: str = "time"
    pruning: bool = True
    lb_bucket_minutes: float = 360.0
    lb_max_buckets: int = 48
    parallel_matrix_threshold: int = 192
    parallel_targets_threshold: int = 4096
    kernel_threads: Optional[Union[int, str]] = None

    def __post_init__(self) -> None:
        if self.chunk < 1:
            raise ValueError(f"chunk must be at least 1, got {self.chunk}")
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be at least 1 or None, got {self.workers}")
        if self.kernel_threads is not None and self.kernel_threads != "auto":
            if not isinstance(self.kernel_threads, int) or self.kernel_threads < 1:
                raise ValueError(
                    "kernel_threads must be a positive integer, 'auto' or "
                    f"None, got {self.kernel_threads!r}"
                )
        if self.shards is not None and self.shards < 1:
            raise ValueError(f"shards must be at least 1 or None, got {self.shards}")
        if self.shard_strategy not in ("time", "hash"):
            raise ValueError(
                f"shard_strategy must be 'time' or 'hash', got {self.shard_strategy!r}"
            )
        if self.lb_bucket_minutes <= 0:
            raise ValueError("lb_bucket_minutes must be positive")
        if self.lb_max_buckets < 1:
            raise ValueError("lb_max_buckets must be at least 1")
        if self.parallel_matrix_threshold < 0 or self.parallel_targets_threshold < 0:
            raise ValueError("parallelism thresholds must be non-negative")


def kernel_threads_arg(value: str) -> Union[int, str]:
    """Argparse type for ``--kernel-threads``: an integer or ``auto``.

    Any other string is a hard usage error (exit 2), matching the
    strict CLI validation policy — only the environment knob degrades
    silently (DESIGN.md D6).
    """
    import argparse

    if value.strip().lower() == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}"
        )


def add_compute_arguments(parser, pruning: bool = False) -> None:
    """Attach the shared compute-substrate flags to an argparse parser.

    Used by the ``glove`` CLI and the ``glove-repro`` experiment runner
    so the substrate surface is declared once.
    """
    from repro.core.engine import available_backends

    parser.add_argument(
        "--backend",
        choices=available_backends(),
        default="auto",
        help="stretch-compute backend (default: auto = pick by workload size)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pool size: process backend (bulk matrix builds, large target "
        "sets) and shard-level concurrency of the sharded backend",
    )
    parser.add_argument(
        "--chunk", type=int, default=None, help="fingerprints per broadcast chunk"
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count for the sharded backend (default: pick from the "
        "population size; must be at least 1)",
    )
    parser.add_argument(
        "--shard-strategy",
        choices=("time", "hash"),
        default=None,
        help="sharded backend partitioning rule (default: time = "
        "activity-midpoint locality; hash = deterministic uid hash)",
    )
    parser.add_argument(
        "--kernel-threads",
        type=kernel_threads_arg,
        default=None,
        help="worker threads per batched compiled-kernel call: an integer "
        "or 'auto' (= CPU count; a 1-CPU host never splits) (default: "
        "REPRO_KERNEL_THREADS or 1; results are byte-identical at any "
        "thread count)",
    )
    if pruning:
        parser.add_argument(
            "--no-prune",
            action="store_true",
            help="disable lower-bound pruning (identical results, slower)",
        )


def compute_config_from_args(args) -> "ComputeConfig":
    """Build a :class:`ComputeConfig` from parsed compute flags.

    Invalid values exit with status 2 and an ``error:`` line, argparse
    style, instead of a traceback.
    """
    import sys

    kwargs = {"backend": args.backend}
    if getattr(args, "workers", None) is not None:
        kwargs["workers"] = args.workers
    if getattr(args, "chunk", None) is not None:
        kwargs["chunk"] = args.chunk
    if getattr(args, "shards", None) is not None:
        kwargs["shards"] = args.shards
    if getattr(args, "shard_strategy", None) is not None:
        kwargs["shard_strategy"] = args.shard_strategy
    if getattr(args, "kernel_threads", None) is not None:
        kwargs["kernel_threads"] = args.kernel_threads
    if getattr(args, "no_prune", False):
        kwargs["pruning"] = False
    try:
        return ComputeConfig(**kwargs)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2)


@dataclass(frozen=True)
class StretchConfig:
    """Parameters of the sample/fingerprint stretch effort (Eq. 1-3).

    Attributes
    ----------
    phi_max_sigma_m:
        Spatial saturation threshold in metres (paper: 20 km).  A spatial
        stretch of this magnitude yields the maximum spatial loss of 1.
    phi_max_tau_min:
        Temporal saturation threshold in minutes (paper: 8 hours).
    w_sigma, w_tau:
        Normalization weights of the spatial and temporal contributions
        in Eq. 1.  The paper uses 1/2 and 1/2 so that the sample stretch
        effort lies in [0, 1].
    """

    phi_max_sigma_m: float = 20_000.0
    phi_max_tau_min: float = 8.0 * 60.0
    w_sigma: float = 0.5
    w_tau: float = 0.5

    def __post_init__(self) -> None:
        if self.phi_max_sigma_m <= 0:
            raise ValueError("phi_max_sigma_m must be positive")
        if self.phi_max_tau_min <= 0:
            raise ValueError("phi_max_tau_min must be positive")
        if self.w_sigma < 0 or self.w_tau < 0:
            raise ValueError("weights must be non-negative")
        if abs(self.w_sigma + self.w_tau - 1.0) > 1e-9:
            raise ValueError("w_sigma + w_tau must equal 1 so delta lies in [0, 1]")


@dataclass(frozen=True)
class SuppressionConfig:
    """Thresholds for sample suppression (paper Section 7.1).

    A generalized sample is discarded when its spatial extent exceeds
    ``spatial_threshold_m`` (on either axis) or its temporal extent
    exceeds ``temporal_threshold_min``.  ``None`` disables the
    corresponding check.  The paper's Table 2 uses 15 km and 6 hours.

    ``keep_at_least_one`` prevents a fingerprint from being suppressed
    into nothingness: when every sample of a group exceeds the
    thresholds, the least-stretched one is retained.  The paper reports
    zero discarded fingerprints for GLOVE at its (much larger) dataset
    scale; this safeguard preserves that property at reproduction scale
    (see DESIGN.md).
    """

    spatial_threshold_m: float = None
    temporal_threshold_min: float = None
    keep_at_least_one: bool = True

    def __post_init__(self) -> None:
        if self.spatial_threshold_m is not None and self.spatial_threshold_m <= 0:
            raise ValueError("spatial_threshold_m must be positive or None")
        if self.temporal_threshold_min is not None and self.temporal_threshold_min <= 0:
            raise ValueError("temporal_threshold_min must be positive or None")

    @property
    def enabled(self) -> bool:
        """Whether any suppression threshold is active."""
        return self.spatial_threshold_m is not None or self.temporal_threshold_min is not None


@dataclass(frozen=True)
class GloveConfig:
    """Full GLOVE configuration.

    Attributes
    ----------
    k:
        Target anonymity level: every published fingerprint must hide at
        least ``k`` subscribers.
    stretch:
        Parameters of the stretch-effort metric.
    suppression:
        Optional sample-suppression thresholds applied to the output.
    reshape:
        Whether to run the reshaping pass that resolves temporal overlaps
        in merged fingerprints (paper Fig. 6b).  On by default, as in the
        paper.
    """

    k: int = 2
    stretch: StretchConfig = field(default_factory=StretchConfig)
    suppression: SuppressionConfig = field(default_factory=SuppressionConfig)
    reshape: bool = True

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ValueError(f"k must be at least 2, got {self.k}")
