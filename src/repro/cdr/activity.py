"""Event timing: when subscribers touch the cellular network.

CDR sampling is sparse, heterogeneous and bursty, and this is exactly
the property the paper traces the poor anonymizability of mobile
fingerprints to (Section 5.3: long-tailed *temporal* diversity).  The
model reproduces the three well-documented ingredients:

* a **circadian rate profile** -- activity is low at night, ramps up in
  the morning and peaks around midday and in the evening, with a
  distinct weekend shape;
* **per-user rate heterogeneity** -- daily event counts are lognormal
  across subscribers;
* **burstiness** -- events arrive in short sessions of one to a few
  correlated events (call + callback, SMS exchanges), not as a uniform
  Poisson stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

#: Relative call/SMS rate per hour of day (weekday shape).  The profile
#: is deliberately close to published CDR diurnal curves: a deep night
#: trough, a morning ramp, a midday plateau and an evening peak.
WEEKDAY_PROFILE = np.array(
    [
        0.10, 0.06, 0.04, 0.03, 0.04, 0.08,  # 00-05: night trough
        0.25, 0.55, 0.90, 1.10, 1.20, 1.30,  # 06-11: morning ramp
        1.35, 1.25, 1.20, 1.25, 1.35, 1.50,  # 12-17: daytime plateau
        1.65, 1.75, 1.60, 1.20, 0.70, 0.30,  # 18-23: evening peak
    ]
)

#: Weekend shape: later start, flatter afternoon, stronger late evening.
WEEKEND_PROFILE = np.array(
    [
        0.20, 0.12, 0.08, 0.05, 0.04, 0.05,
        0.10, 0.20, 0.45, 0.75, 1.00, 1.20,
        1.30, 1.25, 1.15, 1.10, 1.15, 1.30,
        1.50, 1.65, 1.60, 1.35, 0.95, 0.50,
    ]
)

MINUTES_PER_DAY = 24 * 60


@dataclass(frozen=True)
class ActivityConfig:
    """Parameters of the event-timing model.

    Attributes
    ----------
    mean_sessions_per_day:
        Population median of the per-user daily session rate.
    rate_sigma:
        Sigma of the lognormal per-user rate multiplier (heterogeneity).
    burst_continuation:
        Probability that a session holds one more event; events per
        session are ``1 + Geometric(1 - burst_continuation)``.
    burst_gap_min:
        Mean gap in minutes between events of one session.
    max_session_events:
        Hard cap on events per session.
    week_start_day:
        Day-of-week of ``t = 0`` (0 = Monday); days 5 and 6 of each week
        use the weekend profile.
    """

    mean_sessions_per_day: float = 8.0
    rate_sigma: float = 0.6
    burst_continuation: float = 0.35
    burst_gap_min: float = 2.0
    max_session_events: int = 5
    week_start_day: int = 0

    def __post_init__(self) -> None:
        if self.mean_sessions_per_day <= 0:
            raise ValueError("mean_sessions_per_day must be positive")
        if self.rate_sigma < 0:
            raise ValueError("rate_sigma must be non-negative")
        if not 0.0 <= self.burst_continuation < 1.0:
            raise ValueError("burst_continuation must be in [0, 1)")
        if self.max_session_events < 1:
            raise ValueError("max_session_events must be at least 1")
        if not 0 <= self.week_start_day <= 6:
            raise ValueError("week_start_day must be in 0..6")


class ActivityModel:
    """Generates per-user event times over a recording period."""

    def __init__(self, config: ActivityConfig = ActivityConfig()):
        self.config = config
        self._weekday_p = WEEKDAY_PROFILE / WEEKDAY_PROFILE.sum()
        self._weekend_p = WEEKEND_PROFILE / WEEKEND_PROFILE.sum()

    def user_rate(self, rng: np.random.Generator) -> float:
        """Draw a subscriber's daily session rate (lognormal heterogeneity)."""
        cfg = self.config
        return float(
            cfg.mean_sessions_per_day * rng.lognormal(mean=0.0, sigma=cfg.rate_sigma)
        )

    def is_weekend(self, day: int) -> bool:
        """Whether recording day ``day`` (0-based) is a Saturday or Sunday."""
        return (day + self.config.week_start_day) % 7 >= 5

    def event_times(
        self,
        rate_sessions_per_day: float,
        days: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Event times (minutes from epoch, 1-min precision, sorted, unique).

        Sessions are placed day by day: the number of sessions of a day
        is Poisson with the user's daily rate (weekends at 85%), session
        start hours follow the circadian profile, and each session emits
        a short burst of events.
        """
        if days < 1:
            raise ValueError("days must be at least 1")
        cfg = self.config
        times = []
        for day in range(days):
            weekend = self.is_weekend(day)
            profile = self._weekend_p if weekend else self._weekday_p
            day_rate = rate_sessions_per_day * (0.85 if weekend else 1.0)
            n_sessions = int(rng.poisson(day_rate))
            if n_sessions == 0:
                continue
            hours = rng.choice(24, size=n_sessions, p=profile)
            starts = day * MINUTES_PER_DAY + hours * 60 + rng.uniform(0, 60, n_sessions)
            for start in starts:
                n_events = 1 + int(
                    min(
                        rng.geometric(1.0 - cfg.burst_continuation) - 1,
                        cfg.max_session_events - 1,
                    )
                )
                gaps = rng.exponential(cfg.burst_gap_min, n_events)
                gaps[0] = 0.0
                times.append(start + np.cumsum(gaps))
        if not times:
            return np.empty(0, dtype=np.float64)
        t = np.concatenate(times)
        t = np.floor(t[t < days * MINUTES_PER_DAY])  # 1-minute precision
        return np.unique(t)
