"""End-to-end synthesis of a CDR fingerprint dataset.

Ties the substrate together: build the antenna network, draw the
subscriber population, generate per-user event times, locate every
event, snap it to the 100 m grid at 1-minute precision, and package the
result as a :class:`~repro.core.dataset.FingerprintDataset` — the same
movement micro-data format the paper extracts from the D4D datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.cdr.activity import ActivityConfig, ActivityModel
from repro.cdr.antenna import AntennaNetwork, AntennaNetworkConfig
from repro.cdr.mobility import MobilityConfig, MobilityModel
from repro.cdr.population import Population, PopulationConfig
from repro.core.dataset import FingerprintDataset
from repro.core.fingerprint import Fingerprint
from repro.core.sample import DEFAULT_DT_MIN, DEFAULT_DX_M, DEFAULT_DY_M, NCOLS
from repro.geo.grid import Grid
from repro.geo.region import Region


@dataclass(frozen=True)
class GeneratorConfig:
    """Complete configuration of one synthetic CDR dataset.

    Attributes
    ----------
    name:
        Dataset label.
    region:
        Country (or city) extent on the projected plane.
    n_users:
        Number of subscribers to synthesize.
    days:
        Recording period length in days.
    network:
        Antenna deployment parameters.
    population:
        Subscriber anchor parameters.
    activity:
        Event-timing parameters.
    mobility:
        Event-location parameters.
    """

    name: str
    region: Region
    n_users: int
    days: int
    network: AntennaNetworkConfig = field(default_factory=AntennaNetworkConfig)
    population: PopulationConfig = field(default_factory=PopulationConfig)
    activity: ActivityConfig = field(default_factory=ActivityConfig)
    mobility: MobilityConfig = field(default_factory=MobilityConfig)

    def __post_init__(self) -> None:
        if self.n_users < 1:
            raise ValueError("n_users must be at least 1")
        if self.days < 1:
            raise ValueError("days must be at least 1")


class CDRGenerator:
    """Synthesizes fingerprint datasets from a :class:`GeneratorConfig`."""

    def __init__(self, config: GeneratorConfig, seed: int = 0):
        self.config = config
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)
        self.grid = Grid()
        self.network = AntennaNetwork(
            config.region, config.network, rng=self._rng, grid=self.grid
        )
        self.population = Population(
            self.network, config.n_users, config.population, rng=self._rng
        )
        self.activity = ActivityModel(config.activity)
        self.mobility = MobilityModel(
            self.network, config.mobility, week_start_day=config.activity.week_start_day
        )

    def generate(self) -> FingerprintDataset:
        """Produce the dataset (deterministic for a given config and seed).

        Every sample carries the paper's original granularity: a 100 m
        grid cell and a 1-minute interval.  Users that generate no
        events at all are skipped (they would be screened out anyway).
        """
        cfg = self.config
        dataset = FingerprintDataset(name=cfg.name)
        for user in self.population:
            rate = self.activity.user_rate(self._rng)
            times = self.activity.event_times(rate, cfg.days, self._rng)
            if times.size == 0:
                continue
            rows = np.empty((times.size, NCOLS), dtype=np.float64)
            for i, t in enumerate(times):
                antenna = self.mobility.antenna_at(user, float(t), self._rng)
                x, y = self.network.positions[antenna]
                rows[i] = (x, DEFAULT_DX_M, y, DEFAULT_DY_M, float(t), DEFAULT_DT_MIN)
            # Same-minute duplicates at one antenna collapse to one sample.
            rows = np.unique(rows, axis=0)
            dataset.add(Fingerprint(user.uid, rows))
        return dataset


def generate_dataset(config: GeneratorConfig, seed: int = 0) -> FingerprintDataset:
    """One-call convenience wrapper around :class:`CDRGenerator`."""
    return CDRGenerator(config, seed=seed).generate()
