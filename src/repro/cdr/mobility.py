"""Where each CDR event is logged: the subscriber mobility model.

Given an event time, the model decides which antenna serves the
subscriber, following a daily schedule over the user's anchor places
plus occasional exploration:

* at night the subscriber is almost surely at home;
* during weekday working hours, at work;
* otherwise, a preferential-return draw over the anchor set (Zipf
  visit frequencies) with a small exploration probability that picks a
  fresh location at a truncated power-law distance from home (the
  exploration/preferential-return picture of Song et al., 2010).

Radio-level noise is included: an event at an anchor is served by a
nearby non-anchor antenna with a small probability (cell breathing and
load balancing), which keeps fingerprints from collapsing onto a
handful of exactly repeated cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cdr.antenna import AntennaNetwork
from repro.cdr.population import User

MINUTES_PER_DAY = 24 * 60


@dataclass(frozen=True)
class MobilityConfig:
    """Parameters of the event-location model.

    Attributes
    ----------
    night_home_prob:
        Probability of being at home during night hours.
    work_prob:
        Probability of being at work during weekday office hours.
    exploration_prob:
        Probability that a non-anchored event explores a new place.
    exploration_scale_m:
        Scale of the Pareto jump length for exploration.
    exploration_truncation_m:
        Maximum exploration jump length.
    handoff_prob:
        Probability that an anchored event is served by a neighbouring
        antenna instead of the anchor's.
    handoff_radius_m:
        Radius within which the neighbouring antenna is chosen.
    night_hours, work_hours:
        Inclusive-exclusive hour ranges of the two scheduled regimes.
    """

    night_home_prob: float = 0.95
    work_prob: float = 0.75
    exploration_prob: float = 0.10
    exploration_scale_m: float = 1_000.0
    exploration_truncation_m: float = 25_000.0
    handoff_prob: float = 0.20
    handoff_radius_m: float = 1_500.0
    night_hours: tuple = (0, 7)
    work_hours: tuple = (9, 18)

    def __post_init__(self) -> None:
        for p in (
            self.night_home_prob,
            self.work_prob,
            self.exploration_prob,
            self.handoff_prob,
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError("probabilities must be in [0, 1]")
        if self.exploration_scale_m <= 0 or self.exploration_truncation_m <= 0:
            raise ValueError("exploration scales must be positive")


class MobilityModel:
    """Maps (user, event time) to the serving antenna."""

    def __init__(
        self,
        network: AntennaNetwork,
        config: MobilityConfig = MobilityConfig(),
        week_start_day: int = 0,
    ):
        self.network = network
        self.config = config
        self.week_start_day = week_start_day

    # ------------------------------------------------------------------
    # Schedule helpers
    # ------------------------------------------------------------------
    def hour_of_day(self, t_min: float) -> int:
        """Hour of day (0-23) of an event time in minutes from epoch."""
        return int((t_min % MINUTES_PER_DAY) // 60)

    def is_weekend(self, t_min: float) -> bool:
        """Whether the event falls on a Saturday or Sunday."""
        day = int(t_min // MINUTES_PER_DAY)
        return (day + self.week_start_day) % 7 >= 5

    # ------------------------------------------------------------------
    # Location draws
    # ------------------------------------------------------------------
    def _explore(self, user: User, rng: np.random.Generator) -> int:
        cfg = self.config
        hx, hy = self.network.positions[user.home_antenna]
        # Truncated Pareto jump (Levy-flight-like displacement).
        r = cfg.exploration_scale_m * (rng.pareto(1.8) + 1.0)
        r = min(r, cfg.exploration_truncation_m)
        theta = rng.uniform(0.0, 2.0 * np.pi)
        px, py = self.network.region.clip(hx + r * np.cos(theta), hy + r * np.sin(theta))
        return int(self.network.nearest(px, py))

    def _handoff(self, antenna: int, rng: np.random.Generator) -> int:
        cfg = self.config
        x, y = self.network.positions[antenna]
        nearby = self.network.antennas_within(float(x), float(y), cfg.handoff_radius_m)
        if nearby.size <= 1:
            return antenna
        return int(rng.choice(nearby))

    def _preferential_return(self, user: User, rng: np.random.Generator) -> int:
        idx = rng.choice(user.anchors.shape[0], p=user.anchor_weights)
        return int(user.anchors[idx])

    def antenna_at(self, user: User, t_min: float, rng: np.random.Generator) -> int:
        """Antenna index serving ``user`` at event time ``t_min``."""
        cfg = self.config
        hour = self.hour_of_day(t_min)
        weekend = self.is_weekend(t_min)

        if cfg.night_hours[0] <= hour < cfg.night_hours[1]:
            if rng.random() < cfg.night_home_prob:
                antenna = user.home_antenna
            else:
                antenna = self._preferential_return(user, rng)
        elif not weekend and cfg.work_hours[0] <= hour < cfg.work_hours[1]:
            if rng.random() < cfg.work_prob:
                antenna = user.work_antenna
            elif rng.random() < cfg.exploration_prob:
                return self._explore(user, rng)
            else:
                antenna = self._preferential_return(user, rng)
        else:
            if rng.random() < cfg.exploration_prob:
                return self._explore(user, rng)
            antenna = self._preferential_return(user, rng)

        if rng.random() < cfg.handoff_prob:
            antenna = self._handoff(antenna, rng)
        return antenna
