"""Named dataset presets mirroring the paper's four evaluation datasets.

The paper evaluates on two nationwide CDR datasets (``d4d-civ``, Ivory
Coast, 82k screened users; ``d4d-sen``, Senegal, 320k users) and two
citywide subsets (``abidjan``, ``dakar``).  The presets below configure
the synthetic substrate so that each stands in for one of them:

* ``synth-civ`` -- a country about the size of Ivory Coast (650 x
  500 km), moderately urbanized, with the paper's screening rule of at
  least one sample per day on average;
* ``synth-sen`` -- a slightly smaller, more coastal-concentrated
  country, with the Senegal rule of activity on at least 75% of days;
* ``abidjan`` / ``dakar`` -- single dominant metropolitan areas.

Populations are scaled down (defaults of a few hundred users) because
GLOVE is quadratic in the user count — the paper itself needed about 60
GPU-hours per nationwide dataset.  All experiments accept ``n_users``
overrides; DESIGN.md discusses why the paper's findings are
shape-preserved at this scale.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional

from repro.cdr.activity import ActivityConfig
from repro.cdr.antenna import AntennaNetworkConfig
from repro.cdr.filtering import filter_active_days, filter_min_samples_per_day
from repro.cdr.generator import CDRGenerator, GeneratorConfig
from repro.cdr.mobility import MobilityConfig
from repro.cdr.population import PopulationConfig
from repro.core.dataset import FingerprintDataset
from repro.geo.region import Region

#: Country-scale region comparable to Ivory Coast (~322,000 km^2).
CIV_REGION = Region("synth-civ", 0.0, 650_000.0, 0.0, 500_000.0)

#: Country-scale region comparable to Senegal (~197,000 km^2).
SEN_REGION = Region("synth-sen", 0.0, 550_000.0, 0.0, 360_000.0)

#: City-scale regions (single large metropolitan area each).
ABIDJAN_REGION = Region("abidjan", 0.0, 60_000.0, 0.0, 50_000.0)
DAKAR_REGION = Region("dakar", 0.0, 50_000.0, 0.0, 45_000.0)



def _scaled_antennas(n_users: int, cap: int, per_user: float = 0.8, floor: int = 80) -> int:
    """Antenna count scaled with population.

    Real CDR datasets have tens of subscribers per antenna; at the
    reproduction's reduced populations a fixed nationwide deployment
    would leave most antennas serving a single user and destroy the
    spatial overlap between fingerprints that the paper's datasets
    exhibit.  Scaling the deployment with the population preserves the
    users-per-antenna ratio regime instead.
    """
    return int(min(cap, max(floor, round(per_user * n_users))))

def _civ_config(n_users: int, days: int) -> GeneratorConfig:
    return GeneratorConfig(
        name="synth-civ",
        region=CIV_REGION,
        n_users=n_users,
        days=days,
        network=AntennaNetworkConfig(
            n_cities=8,
            n_antennas=_scaled_antennas(n_users, 450),
            city_radius_min_m=2_000.0,
            city_radius_max_m=9_000.0,
        ),
        population=PopulationConfig(commuter_fraction=0.10),
        activity=ActivityConfig(mean_sessions_per_day=8.0, rate_sigma=0.6),
        mobility=MobilityConfig(),
    )


def _sen_config(n_users: int, days: int) -> GeneratorConfig:
    return GeneratorConfig(
        name="synth-sen",
        region=SEN_REGION,
        n_users=n_users,
        days=days,
        network=AntennaNetworkConfig(
            n_cities=6,
            n_antennas=_scaled_antennas(n_users, 380),
            zipf_exponent=1.2,
            city_radius_min_m=2_000.0,
            city_radius_max_m=8_000.0,
        ),
        population=PopulationConfig(commuter_fraction=0.12, secondary_radius_m=1_500.0),
        activity=ActivityConfig(mean_sessions_per_day=9.0, rate_sigma=0.55),
        mobility=MobilityConfig(),
    )


def _abidjan_config(n_users: int, days: int) -> GeneratorConfig:
    return GeneratorConfig(
        name="abidjan",
        region=ABIDJAN_REGION,
        n_users=n_users,
        days=days,
        network=AntennaNetworkConfig(
            n_cities=3,
            n_antennas=_scaled_antennas(n_users, 220),
            city_radius_min_m=2_000.0,
            city_radius_max_m=8_000.0,
            rural_fraction=0.05,
        ),
        population=PopulationConfig(commuter_fraction=0.10, secondary_radius_m=1_500.0),
        activity=ActivityConfig(mean_sessions_per_day=9.0),
        mobility=MobilityConfig(exploration_truncation_m=25_000.0),
    )


def _dakar_config(n_users: int, days: int) -> GeneratorConfig:
    return GeneratorConfig(
        name="dakar",
        region=DAKAR_REGION,
        n_users=n_users,
        days=days,
        network=AntennaNetworkConfig(
            n_cities=3,
            n_antennas=_scaled_antennas(n_users, 200),
            city_radius_min_m=2_000.0,
            city_radius_max_m=7_000.0,
            rural_fraction=0.05,
        ),
        population=PopulationConfig(commuter_fraction=0.10, secondary_radius_m=1_500.0),
        activity=ActivityConfig(mean_sessions_per_day=9.5),
        mobility=MobilityConfig(exploration_truncation_m=22_000.0),
    )


PRESETS: Dict[str, callable] = {
    "synth-civ": _civ_config,
    "synth-sen": _sen_config,
    "abidjan": _abidjan_config,
    "dakar": _dakar_config,
}


def preset_config(name: str, n_users: int = 300, days: int = 7) -> GeneratorConfig:
    """Generator configuration of a named preset."""
    if name not in PRESETS:
        raise ValueError(f"unknown preset {name!r}; available: {sorted(PRESETS)}")
    return PRESETS[name](n_users, days)


def synthesize(
    name: str,
    n_users: int = 300,
    days: int = 7,
    seed: int = 0,
    screened: bool = True,
) -> FingerprintDataset:
    """Generate a preset dataset, optionally applying the paper's screening.

    Screening follows Section 3: ``synth-civ``-family datasets drop
    users averaging less than one sample per day; ``synth-sen``-family
    datasets keep users active on at least 75% of the recording days.
    """
    config = preset_config(name, n_users=n_users, days=days)
    dataset = CDRGenerator(config, seed=seed).generate()
    if not screened:
        return dataset
    if name in ("synth-sen", "dakar"):
        return filter_active_days(dataset, min_active_fraction=0.75, days=days)
    return filter_min_samples_per_day(dataset, min_per_day=1.0, days=days)
