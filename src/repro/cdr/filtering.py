"""Dataset screening rules (paper Section 3).

The paper filters the Ivory Coast dataset to users "that have [at
least] one sample per day" on average, while the Senegal dataset comes
pre-limited to users "active for more than 75% of the 2-week time
span".  Both rules are implemented here against the epoch-based sample
times of a fingerprint dataset.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import FingerprintDataset
from repro.core.sample import T

MINUTES_PER_DAY = 24 * 60


def filter_min_samples_per_day(
    dataset: FingerprintDataset, min_per_day: float = 1.0, days: int = None
) -> FingerprintDataset:
    """Keep users averaging at least ``min_per_day`` samples per day.

    ``days`` defaults to the dataset's observed timespan rounded up to
    whole days (minimum one day).
    """
    if days is None:
        t_min, t_max = dataset.time_extent()
        days = max(1, int(np.ceil((t_max - t_min) / MINUTES_PER_DAY)))
    if days < 1:
        raise ValueError("days must be at least 1")
    out = FingerprintDataset(name=dataset.name)
    for fp in dataset:
        if fp.m / days >= min_per_day:
            out.add(fp)
    return out


def filter_active_days(
    dataset: FingerprintDataset, min_active_fraction: float = 0.75, days: int = None
) -> FingerprintDataset:
    """Keep users with samples on at least a fraction of the recording days.

    A day counts as active when the user has at least one sample whose
    interval starts within it.
    """
    if not 0.0 < min_active_fraction <= 1.0:
        raise ValueError("min_active_fraction must be in (0, 1]")
    if days is None:
        t_min, t_max = dataset.time_extent()
        days = max(1, int(np.ceil((t_max - t_min) / MINUTES_PER_DAY)))
    if days < 1:
        raise ValueError("days must be at least 1")
    out = FingerprintDataset(name=dataset.name)
    for fp in dataset:
        active_days = np.unique((fp.data[:, T] // MINUTES_PER_DAY).astype(np.int64))
        if active_days.size / days >= min_active_fraction:
            out.add(fp)
    return out
