"""Subscriber population: anchor places of each synthetic user.

Human mobility is dominated by a handful of *anchor* locations — home,
work, and a few frequently revisited places — visited with a Zipf-like
frequency profile (Gonzalez et al., Nature 2008; Song et al., Science
2010).  Each synthetic subscriber gets:

* a **home antenna**, drawn from a city chosen with probability
  proportional to city population;
* a **work antenna**, in the same city for most users and in another
  city for a commuter minority (this minority produces the long tail of
  the radius-of-gyration distribution that the paper reports: median
  around 2 km, mean around 10 km);
* a few **secondary anchors** near home, visited with decreasing
  frequency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.cdr.antenna import AntennaNetwork


@dataclass(frozen=True)
class PopulationConfig:
    """Parameters of the synthetic subscriber population.

    Attributes
    ----------
    commuter_fraction:
        Fraction of users whose work anchor lies in a different city.
    mean_secondary_anchors:
        Mean number of secondary anchor places per user (Poisson).
    secondary_radius_m:
        Scale of the distance between home and secondary anchors.
    anchor_zipf_exponent:
        Exponent of the visit-frequency Zipf law over anchors.
    """

    commuter_fraction: float = 0.15
    mean_secondary_anchors: float = 2.0
    secondary_radius_m: float = 2_000.0
    commute_radius_m: float = 4_000.0
    anchor_zipf_exponent: float = 1.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.commuter_fraction <= 1.0:
            raise ValueError("commuter_fraction must be in [0, 1]")
        if self.mean_secondary_anchors < 0:
            raise ValueError("mean_secondary_anchors must be non-negative")
        if self.secondary_radius_m <= 0:
            raise ValueError("secondary_radius_m must be positive")


@dataclass(frozen=True)
class User:
    """One synthetic subscriber.

    Attributes
    ----------
    uid:
        Pseudo-identifier.
    home_city:
        Index of the home city.
    anchors:
        Antenna indices of the user's anchor places; ``anchors[0]`` is
        home, ``anchors[1]`` is work, the rest are secondary places.
    anchor_weights:
        Zipf visit-frequency weights over ``anchors`` (sum to 1).
    """

    uid: str
    home_city: int
    anchors: np.ndarray
    anchor_weights: np.ndarray

    @property
    def home_antenna(self) -> int:
        """Antenna index of the home place."""
        return int(self.anchors[0])

    @property
    def work_antenna(self) -> int:
        """Antenna index of the work place."""
        return int(self.anchors[1])


class Population:
    """The synthetic subscriber population of one country."""

    def __init__(
        self,
        network: AntennaNetwork,
        n_users: int,
        config: PopulationConfig = PopulationConfig(),
        rng: Optional[np.random.Generator] = None,
    ):
        if n_users < 1:
            raise ValueError("n_users must be at least 1")
        if rng is None:
            rng = np.random.default_rng(0)
        self.network = network
        self.config = config
        self.users: List[User] = []

        n_cities = network.config.n_cities
        home_cities = rng.choice(n_cities, size=n_users, p=network.city_weights)
        for u in range(n_users):
            city = int(home_cities[u])
            self.users.append(self._make_user(f"u{u:06d}", city, rng))

    def _pick_city_antenna(self, city: int, rng: np.random.Generator) -> int:
        """Random antenna within a city core (uniform over the core)."""
        candidates = self.network.antennas_of_city(city)
        if candidates.size == 0:
            # Degenerate deployment: fall back to the antenna closest to
            # the city center.
            cx, cy = self.network.city_centers[city]
            return self.network.nearest(cx, cy)
        return int(rng.choice(candidates))

    def _make_user(self, uid: str, city: int, rng: np.random.Generator) -> User:
        net = self.network
        cfg = self.config
        home = self._pick_city_antenna(city, rng)

        if rng.random() < cfg.commuter_fraction and net.config.n_cities > 1:
            # Commuters work in a *nearby* city, weighted by population
            # over inverse squared distance (a gravity model); this keeps
            # the radius-of-gyration tail long but not country-spanning.
            home_center = net.city_centers[city]
            others = np.array([c for c in range(net.config.n_cities) if c != city])
            d = np.hypot(
                net.city_centers[others, 0] - home_center[0],
                net.city_centers[others, 1] - home_center[1],
            )
            w = net.city_weights[others] / np.maximum(d, 10_000.0)
            work_city = int(rng.choice(others, p=w / w.sum()))
            work = self._pick_city_antenna(work_city, rng)
        else:
            # Local workers: workplace at a short, exponentially
            # distributed commute from home (median ~3 km), which keeps
            # the radius-of-gyration median around the 2 km the paper
            # reports while commuters populate the long tail.  The
            # workplace must resolve to a *different* antenna than home
            # (a zero-length commute would merge the two anchors and
            # collapse the visit-location diversity real CDR shows).
            hx0, hy0 = net.positions[home]
            work = home
            for _ in range(8):
                r = rng.exponential(cfg.commute_radius_m)
                theta = rng.uniform(0.0, 2.0 * np.pi)
                px, py = net.region.clip(
                    hx0 + r * np.cos(theta), hy0 + r * np.sin(theta)
                )
                work = net.nearest(px, py)
                if work != home:
                    break
            if work == home:
                nearby = net.antennas_within(float(hx0), float(hy0), 30_000.0)
                others = nearby[nearby != home]
                if others.size:
                    work = int(others[0])

        n_secondary = int(rng.poisson(cfg.mean_secondary_anchors))
        anchors = [home, work]
        hx, hy = net.positions[home]
        if n_secondary:
            # Secondary anchors are *distinct* nearby antennas, chosen
            # with probability decaying in distance from home; picking
            # raw points and snapping to the nearest antenna would
            # collapse onto the home antenna at low antenna density.
            nearby = net.antennas_within(float(hx), float(hy), 4.0 * cfg.secondary_radius_m)
            candidates = np.array([a for a in nearby if a not in anchors])
            if candidates.size:
                d = np.hypot(
                    net.positions[candidates, 0] - hx,
                    net.positions[candidates, 1] - hy,
                )
                w = np.exp(-d / cfg.secondary_radius_m) + 1e-6
                take = min(n_secondary, candidates.size)
                chosen = rng.choice(
                    candidates, size=take, replace=False, p=w / w.sum()
                )
                anchors.extend(int(a) for a in chosen)

        ranks = np.arange(1, len(anchors) + 1, dtype=np.float64)
        weights = ranks ** (-cfg.anchor_zipf_exponent)
        weights /= weights.sum()
        return User(
            uid=uid,
            home_city=city,
            anchors=np.asarray(anchors, dtype=np.int64),
            anchor_weights=weights,
        )

    def __len__(self) -> int:
        return len(self.users)

    def __iter__(self):
        return iter(self.users)

    def __getitem__(self, i: int) -> User:
        return self.users[i]
