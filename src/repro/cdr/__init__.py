"""Synthetic CDR substrate.

The paper's evaluation runs on two Orange "Data for Development" CDR
datasets (Ivory Coast and Senegal) that are distributed under
non-disclosure agreements.  This subpackage is the reproduction's
substitute: a generative model of nationwide cellular networks and of
subscriber behaviour that produces movement micro-data with the
statistical properties the paper's findings rest on — sparse, bursty,
circadian event timing; strong spatial locality (median radius of
gyration around 2 km, long-tailed mean); Zipf-distributed city sizes;
heterogeneous per-user activity rates.

* :mod:`repro.cdr.antenna` -- cities and antenna placement.
* :mod:`repro.cdr.population` -- subscriber anchors (home, work,
  secondary places).
* :mod:`repro.cdr.activity` -- event timing (circadian profile, bursty
  sessions, per-user rate heterogeneity).
* :mod:`repro.cdr.mobility` -- where each event is logged (anchor
  schedule, preferential return, exploration).
* :mod:`repro.cdr.generator` -- end-to-end dataset synthesis.
* :mod:`repro.cdr.datasets` -- named presets (``synth-civ``,
  ``synth-sen``, ``abidjan``, ``dakar``).
* :mod:`repro.cdr.filtering` -- the paper's Section 3 screening rules.
* :mod:`repro.cdr.io` -- CSV serialization of events and fingerprints.
"""

from repro.cdr.antenna import AntennaNetwork, AntennaNetworkConfig
from repro.cdr.datasets import PRESETS, preset_config, synthesize
from repro.cdr.filtering import filter_min_samples_per_day, filter_active_days
from repro.cdr.generator import CDRGenerator, GeneratorConfig
from repro.cdr.io import (
    read_events_csv,
    read_fingerprints_csv,
    write_events_csv,
    write_fingerprints_csv,
)
from repro.cdr.population import Population, PopulationConfig
from repro.cdr.activity import ActivityConfig, ActivityModel
from repro.cdr.mobility import MobilityConfig, MobilityModel

__all__ = [
    "AntennaNetwork",
    "AntennaNetworkConfig",
    "Population",
    "PopulationConfig",
    "ActivityModel",
    "ActivityConfig",
    "MobilityModel",
    "MobilityConfig",
    "CDRGenerator",
    "GeneratorConfig",
    "synthesize",
    "preset_config",
    "PRESETS",
    "filter_min_samples_per_day",
    "filter_active_days",
    "read_events_csv",
    "write_events_csv",
    "read_fingerprints_csv",
    "write_fingerprints_csv",
]
