"""Statistical characterization of CDR traces.

DESIGN.md argues the synthetic substrate is a valid substitute for the
restricted D4D datasets because it reproduces the statistics the
paper's findings rest on.  This module computes those statistics so the
claim is testable (see ``tests/cdr/test_trace_stats.py``) and
documentable in EXPERIMENTS.md:

* circadian activity profile (events per hour of day);
* inter-event time distribution (sparsity and burstiness);
* per-user event-rate heterogeneity;
* distinct locations per user and visit-frequency concentration;
* radius-of-gyration distribution (locality + long tail).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.analysis.gyration import radius_of_gyration
from repro.core.dataset import FingerprintDataset
from repro.core.sample import DX, DY, T, X, Y

MINUTES_PER_DAY = 24 * 60


@dataclass(frozen=True)
class TraceStatistics:
    """Dataset-level statistics of a movement micro-data collection.

    Attributes
    ----------
    hourly_profile:
        ``(24,)`` normalized share of events per hour of day.
    median_interevent_min / p90_interevent_min:
        Quantiles of the within-user inter-event time distribution.
    burstiness:
        Goh-Barabasi burstiness coefficient
        ``(sigma - mu) / (sigma + mu)`` of inter-event times
        (0 = Poisson, -> 1 = extremely bursty).
    rate_p90_over_p10:
        Heterogeneity of per-user daily event rates.
    median_locations_per_user:
        Median count of distinct visited cells.
    top_location_share:
        Median (over users) share of events at the user's single most
        visited location.
    rg_median_m / rg_mean_m:
        Radius-of-gyration summary.
    """

    hourly_profile: np.ndarray
    median_interevent_min: float
    p90_interevent_min: float
    burstiness: float
    rate_p90_over_p10: float
    median_locations_per_user: float
    top_location_share: float
    rg_median_m: float
    rg_mean_m: float


def trace_statistics(dataset: FingerprintDataset) -> TraceStatistics:
    """Compute the full statistics bundle of a dataset."""
    if len(dataset) == 0:
        raise ValueError("dataset is empty")

    hour_counts = np.zeros(24)
    inter_events = []
    rates = []
    n_locations = []
    top_shares = []
    rgs = []

    t_min, t_max = dataset.time_extent()
    days = max((t_max - t_min) / MINUTES_PER_DAY, 1e-9)

    for fp in dataset:
        times = np.sort(fp.data[:, T])
        hours = ((times % MINUTES_PER_DAY) // 60).astype(int)
        np.add.at(hour_counts, hours, 1)
        if times.size >= 2:
            inter_events.append(np.diff(times))
        rates.append(fp.m / days)
        centers = Counter(
            zip(
                (fp.data[:, X] + fp.data[:, DX] / 2.0).round(-2).tolist(),
                (fp.data[:, Y] + fp.data[:, DY] / 2.0).round(-2).tolist(),
            )
        )
        n_locations.append(len(centers))
        top_shares.append(max(centers.values()) / fp.m)
        rgs.append(radius_of_gyration(fp))

    gaps = np.concatenate(inter_events) if inter_events else np.array([0.0])
    mu, sigma = float(gaps.mean()), float(gaps.std())
    burstiness = (sigma - mu) / (sigma + mu) if (sigma + mu) > 0 else 0.0

    rates = np.asarray(rates)
    p10, p90 = np.quantile(rates, [0.1, 0.9])

    return TraceStatistics(
        hourly_profile=hour_counts / hour_counts.sum(),
        median_interevent_min=float(np.median(gaps)),
        p90_interevent_min=float(np.quantile(gaps, 0.9)),
        burstiness=float(burstiness),
        rate_p90_over_p10=float(p90 / max(p10, 1e-9)),
        median_locations_per_user=float(np.median(n_locations)),
        top_location_share=float(np.median(top_shares)),
        rg_median_m=float(np.median(rgs)),
        rg_mean_m=float(np.mean(rgs)),
    )


def night_day_ratio(stats: TraceStatistics) -> float:
    """Mean night-hour (1-5 am) to evening-hour (6-10 pm) activity ratio."""
    night = stats.hourly_profile[1:5].mean()
    evening = stats.hourly_profile[18:22].mean()
    if evening == 0:
        return 0.0
    return float(night / evening)
