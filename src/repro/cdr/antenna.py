"""Cities and antenna placement for the synthetic cellular network.

City populations follow a Zipf law (a robust empirical regularity of
urban systems), city centers are scattered over the country region, and
antennas are placed around each center with a Gaussian radial profile
whose spread grows with city population.  A small fraction of antennas
is spread uniformly over the country to model rural coverage.  All
antenna positions are snapped to the 100 m analysis grid and
deduplicated, mirroring the paper's guarantee that each grid cell holds
at most one antenna.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.spatial import cKDTree

from repro.geo.grid import Grid
from repro.geo.region import Region


@dataclass(frozen=True)
class AntennaNetworkConfig:
    """Parameters of the synthetic radio access network.

    Attributes
    ----------
    n_cities:
        Number of urban agglomerations.
    n_antennas:
        Target antenna count (post-deduplication count may be lower).
    zipf_exponent:
        Exponent of the city-size Zipf law (1.0 is the classic value).
    city_radius_min_m, city_radius_max_m:
        Radii of the smallest and largest city footprints; intermediate
        cities interpolate with the square root of population.
    rural_fraction:
        Fraction of antennas placed uniformly outside city cores.
    """

    n_cities: int = 12
    n_antennas: int = 400
    zipf_exponent: float = 1.0
    city_radius_min_m: float = 2_000.0
    city_radius_max_m: float = 12_000.0
    rural_fraction: float = 0.10

    def __post_init__(self) -> None:
        if self.n_cities < 1:
            raise ValueError("n_cities must be at least 1")
        if self.n_antennas < self.n_cities:
            raise ValueError("need at least one antenna per city")
        if not 0.0 <= self.rural_fraction < 1.0:
            raise ValueError("rural_fraction must be in [0, 1)")
        if self.city_radius_min_m <= 0 or self.city_radius_max_m < self.city_radius_min_m:
            raise ValueError("invalid city radius range")


class AntennaNetwork:
    """A synthetic nationwide antenna deployment.

    Attributes
    ----------
    region:
        Country extent on the projected plane.
    positions:
        ``(n, 2)`` antenna coordinates in metres, grid-snapped, unique.
    antenna_city:
        ``(n,)`` index of the city each antenna belongs to (-1 = rural).
    city_centers:
        ``(n_cities, 2)`` city center coordinates.
    city_weights:
        ``(n_cities,)`` normalized Zipf population weights.
    city_radii:
        ``(n_cities,)`` city footprint radii in metres.
    """

    def __init__(
        self,
        region: Region,
        config: AntennaNetworkConfig = AntennaNetworkConfig(),
        rng: Optional[np.random.Generator] = None,
        grid: Optional[Grid] = None,
    ):
        if rng is None:
            rng = np.random.default_rng(0)
        self.region = region
        self.config = config
        self.grid = grid or Grid()

        ranks = np.arange(1, config.n_cities + 1, dtype=np.float64)
        weights = ranks ** (-config.zipf_exponent)
        self.city_weights = weights / weights.sum()

        # City centers: uniform, but kept away from the region border so
        # city footprints stay mostly inside the country.
        margin_x = min(0.1 * region.width, config.city_radius_max_m)
        margin_y = min(0.1 * region.height, config.city_radius_max_m)
        cx = rng.uniform(region.x_min + margin_x, region.x_max - margin_x, config.n_cities)
        cy = rng.uniform(region.y_min + margin_y, region.y_max - margin_y, config.n_cities)
        self.city_centers = np.column_stack([cx, cy])

        scale = np.sqrt(self.city_weights / self.city_weights[0])
        self.city_radii = (
            config.city_radius_min_m
            + (config.city_radius_max_m - config.city_radius_min_m) * scale
        )

        n_rural = int(round(config.rural_fraction * config.n_antennas))
        n_urban = config.n_antennas - n_rural
        per_city = np.maximum(1, np.round(self.city_weights * n_urban).astype(int))

        xs, ys, owner = [], [], []
        for c in range(config.n_cities):
            k = int(per_city[c])
            r = np.abs(rng.normal(0.0, self.city_radii[c], k))
            theta = rng.uniform(0.0, 2.0 * np.pi, k)
            xs.append(self.city_centers[c, 0] + r * np.cos(theta))
            ys.append(self.city_centers[c, 1] + r * np.sin(theta))
            owner.append(np.full(k, c, dtype=np.int64))
        if n_rural:
            xs.append(rng.uniform(region.x_min, region.x_max, n_rural))
            ys.append(rng.uniform(region.y_min, region.y_max, n_rural))
            owner.append(np.full(n_rural, -1, dtype=np.int64))

        x = np.concatenate(xs)
        y = np.concatenate(ys)
        owner = np.concatenate(owner)
        x, y = region.clip(x, y)
        gx, gy = self.grid.snap(x, y)

        # One antenna per 100 m grid cell, as in the paper's Section 3.
        cells = np.column_stack([gx, gy])
        _, keep = np.unique(cells, axis=0, return_index=True)
        keep.sort()
        self.positions = cells[keep]
        self.antenna_city = owner[keep]
        self._tree = cKDTree(self.positions)
        self._city_antennas = [
            np.flatnonzero(self.antenna_city == c) for c in range(config.n_cities)
        ]

    @property
    def n_antennas(self) -> int:
        """Number of distinct antenna sites after grid deduplication."""
        return self.positions.shape[0]

    def nearest(self, x, y):
        """Index of the antenna serving planar point(s) ``(x, y)``."""
        pts = np.column_stack([np.atleast_1d(x), np.atleast_1d(y)])
        _, idx = self._tree.query(pts)
        if np.isscalar(x):
            return int(idx[0])
        return idx.astype(np.int64)

    def antennas_of_city(self, city: int) -> np.ndarray:
        """Indices of the antennas belonging to a city core."""
        if not 0 <= city < self.config.n_cities:
            raise ValueError(f"city index out of range: {city}")
        return self._city_antennas[city]

    def antennas_within(self, x: float, y: float, radius_m: float) -> np.ndarray:
        """Indices of antennas within ``radius_m`` of a planar point."""
        return np.asarray(self._tree.query_ball_point([x, y], radius_m), dtype=np.int64)

    def __repr__(self) -> str:
        return (
            f"AntennaNetwork(region={self.region.name!r}, antennas={self.n_antennas}, "
            f"cities={self.config.n_cities})"
        )
