"""CSV serialization of CDR events and fingerprint datasets.

Two formats are supported:

* **event CSV** -- one row per original-granularity sample
  (``uid,t_min,x_m,y_m``), the closest analogue of a raw CDR dump;
* **fingerprint CSV** -- one row per (possibly generalized) sample
  (``uid,count,x,dx,y,dy,t,dt``), capable of round-tripping GLOVE
  output including group counts.

Both formats are plain text so anonymized datasets can be published and
inspected without this library.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.core.dataset import FingerprintDataset
from repro.core.fingerprint import Fingerprint
from repro.core.sample import DEFAULT_DT_MIN, DEFAULT_DX_M, DEFAULT_DY_M, NCOLS

PathLike = Union[str, Path]

EVENT_HEADER = ["uid", "t_min", "x_m", "y_m"]
FINGERPRINT_HEADER = ["uid", "count", "x", "dx", "y", "dy", "t", "dt"]


def write_events_csv(dataset: FingerprintDataset, path: PathLike) -> int:
    """Write original-granularity samples as an event CSV; returns row count.

    Raises ``ValueError`` when a fingerprint is generalized (extent
    differing from the original 100 m / 1 min granularity), since the
    event format cannot represent it.
    """
    n = 0
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(EVENT_HEADER)
        for fp in dataset:
            for row in fp.data:
                x, dx, y, dy, t, dt = row
                if dx != DEFAULT_DX_M or dy != DEFAULT_DY_M or dt != DEFAULT_DT_MIN:
                    raise ValueError(
                        f"fingerprint {fp.uid!r} is generalized; "
                        "use write_fingerprints_csv instead"
                    )
                writer.writerow([fp.uid, f"{t:.0f}", f"{x:.1f}", f"{y:.1f}"])
                n += 1
    return n


def read_events_csv(path: PathLike, name: str = None) -> FingerprintDataset:
    """Read an event CSV back into a fingerprint dataset."""
    by_user: Dict[str, List[List[float]]] = {}
    with open(path, newline="") as f:
        reader = csv.reader(f)
        header = next(reader)
        if header != EVENT_HEADER:
            raise ValueError(f"unexpected event CSV header: {header}")
        for rec in reader:
            uid, t, x, y = rec
            by_user.setdefault(uid, []).append(
                [float(x), DEFAULT_DX_M, float(y), DEFAULT_DY_M, float(t), DEFAULT_DT_MIN]
            )
    dataset = FingerprintDataset(name=name or Path(path).stem)
    for uid in sorted(by_user):
        dataset.add(Fingerprint(uid, np.asarray(by_user[uid], dtype=np.float64)))
    return dataset


def write_fingerprints_csv(dataset: FingerprintDataset, path: PathLike) -> int:
    """Write a (generalized) fingerprint dataset; returns row count."""
    n = 0
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(FINGERPRINT_HEADER)
        for fp in dataset:
            for row in fp.data:
                x, dx, y, dy, t, dt = row
                writer.writerow(
                    [fp.uid, fp.count]
                    + [f"{v:.3f}" for v in (x, dx, y, dy, t, dt)]
                )
                n += 1
    return n


def read_fingerprints_csv(path: PathLike, name: str = None) -> FingerprintDataset:
    """Read a fingerprint CSV produced by :func:`write_fingerprints_csv`.

    Group membership lists are not serialized; each row group is
    restored with synthetic member labels ``<uid>#0 .. <uid>#count-1``.
    """
    rows_by_user: Dict[str, List[List[float]]] = {}
    counts: Dict[str, int] = {}
    order: List[str] = []
    with open(path, newline="") as f:
        reader = csv.reader(f)
        header = next(reader)
        if header != FINGERPRINT_HEADER:
            raise ValueError(f"unexpected fingerprint CSV header: {header}")
        for rec in reader:
            uid, count = rec[0], int(rec[1])
            if uid not in rows_by_user:
                order.append(uid)
            rows_by_user.setdefault(uid, []).append([float(v) for v in rec[2:]])
            counts[uid] = count
    dataset = FingerprintDataset(name=name or Path(path).stem)
    for uid in order:
        count = counts[uid]
        members = tuple(f"{uid}#{i}" for i in range(count)) if count > 1 else (uid,)
        dataset.add(
            Fingerprint(
                uid,
                np.asarray(rows_by_user[uid], dtype=np.float64),
                count=count,
                members=members,
            )
        )
    return dataset
