#!/usr/bin/env python3
"""Scenario: utility-aware anonymization with an assumed adversary.

Two advanced features on top of the quickstart workflow:

1. **Utility audit** (paper Section 2.4): verify that the analyses a
   data consumer cares about — home/work detection, commuting flows,
   population density, visit entropy — still work on the anonymized
   release.
2. **Partial anonymization** (paper Section 7): when the data owner is
   willing to assume the adversary only observes office-hours activity,
   GLOVE can restrict generalization to that exposed window and leave
   everything else at original granularity, recovering utility.

Run:  python examples/utility_and_partial.py
"""

from repro import GloveConfig, glove
from repro.analysis import extent_accuracy
from repro.core.partial import partial_glove, time_window_model
from repro.cdr import synthesize
from repro.utility import compare_utility


def main() -> None:
    original = synthesize("synth-civ", n_users=120, days=3, seed=9)
    print(f"dataset: {original}\n")

    # --- Full-length anonymization + utility audit.
    full = glove(original, GloveConfig(k=2))
    audit = compare_utility(original, full.dataset)
    print("utility audit of the full-length 2-anonymized release:")
    print(f"  home displacement (median): {audit.home_median_displacement_m:,.0f} m")
    print(f"  commuting matrix cosine:    {audit.od_cosine:.2f}")
    print(f"  density map cosine:         {audit.density_cosine:.2f}")
    print(f"  visit-entropy correlation:  {audit.entropy_correlation:.2f}")

    # --- Partial anonymization under an office-hours adversary.
    partial = partial_glove(original, time_window_model(9, 17), GloveConfig(k=2))
    print(
        f"\npartial anonymization (adversary sees 09:00-17:00 activity, "
        f"{partial.exposed_fraction:.0%} of samples):"
    )
    assert partial.exposed_result.dataset.is_k_anonymous(2)
    print("  exposed sub-fingerprints are 2-anonymous  [OK]")

    s_full, t_full = extent_accuracy(full.dataset)
    s_part, t_part = extent_accuracy(partial.dataset)
    print(
        "  samples keeping original spatial accuracy: "
        f"{float(s_full(200.0)):.0%} (full) -> {float(s_part(200.0)):.0%} (partial)"
    )
    print(
        "  median time extent: "
        f"{t_full.median:.0f} min (full) -> {t_part.median:.0f} min (partial)"
    )
    audit_p = compare_utility(original, partial.dataset)
    print(f"  home displacement (median): {audit_p.home_median_displacement_m:,.0f} m")
    print(
        "\ntrade-off: the partial release is conditional on the adversary "
        "assumption — an attacker with night-time knowledge could still "
        "re-identify users (which is why the paper defaults to full-length)."
    )


if __name__ == "__main__":
    main()
