#!/usr/bin/env python3
"""Scenario: head-to-head of GLOVE against the two baselines.

Reproduces, at example scale, the comparisons the paper makes:

* against *uniform spatiotemporal generalization* (Fig. 4 vs Fig. 7):
  at a comparable granularity budget, GLOVE anonymizes everyone while
  uniform coarsening anonymizes almost no one;
* against *W4M-LC* (Table 2): GLOVE keeps every fingerprint, fabricates
  nothing, and its position/time errors are a fraction of W4M's.

Run:  python examples/compare_baselines.py
"""

from dataclasses import replace

from repro import GloveConfig, SuppressionConfig, glove
from repro.analysis import extent_accuracy, utility_report
from repro.core.suppression import suppress_dataset
from repro.baselines import (
    GeneralizationLevel,
    W4MConfig,
    generalize_dataset,
    w4m_lc,
)
from repro.cdr import synthesize


def main() -> None:
    dataset = synthesize("synth-civ", n_users=120, days=3, seed=3)
    print(f"dataset: {dataset}\n")

    # --- Baseline 1: uniform generalization at 2.5 km / 60 min.
    level = GeneralizationLevel(2_500.0, 60.0)
    coarse = generalize_dataset(dataset, level)
    anonymous = sum(
        count
        for size, count in coarse.anonymity_histogram().items()
        if size >= 2
    )
    print(
        f"uniform {level.label}: {anonymous / coarse.n_users:.0%} of users "
        "2-anonymous; every sample degraded to "
        f"{level.spatial_m / 1000:g} km / {level.temporal_min:g} min"
    )

    # --- GLOVE at the same privacy target.  As in the paper's Table 2
    # accounting, error statistics are computed over the samples that
    # survive suppression (the release itself keeps every fingerprint
    # via the keep-at-least-one safeguard).
    suppression = SuppressionConfig(
        spatial_threshold_m=15_000.0, temporal_threshold_min=360.0
    )
    g = glove(dataset, GloveConfig(k=2, suppression=suppression))
    survivors, _ = suppress_dataset(
        glove(dataset, GloveConfig(k=2)).dataset,
        replace(suppression, keep_at_least_one=False),
    )
    spatial, temporal = extent_accuracy(g.dataset)
    print(
        f"GLOVE k=2:      100% of users 2-anonymous; "
        f"{float(spatial(200.0)):.0%} of samples keep the original 100 m, "
        f"median {spatial.median / 1000:.2f} km / {temporal.median:.0f} min"
    )

    # --- Baseline 2: W4M-LC with the paper's suggested settings.
    w = w4m_lc(dataset, W4MConfig(k=2, delta_m=2_000.0, trash_fraction=0.10))
    g_report = utility_report(dataset, survivors, "GLOVE", mode="cover")
    # Fingerprint retention is a property of the *release* (safeguarded),
    # not of the error-accounting dataset.
    g_release = utility_report(dataset, g.dataset, "GLOVE", mode="cover")

    print("\nTable-2-style comparison (k=2):")
    header = f"{'':>24} {'W4M-LC':>12} {'GLOVE':>12}"
    print(header)
    rows = [
        (
            "discarded fingerprints",
            w.stats.discarded_fingerprints,
            g_release.discarded_fingerprints,
        ),
        (
            "created samples",
            f"{w.stats.created_fraction:.0%}",
            "0%",
        ),
        (
            "deleted samples",
            f"{w.stats.deleted_fraction:.0%}",
            f"{g.stats.suppression.discarded_fraction:.0%}",
        ),
        (
            "mean position error",
            f"{w.stats.mean_position_error_m / 1000:.1f} km",
            f"{g_report.mean_position_error_m / 1000:.1f} km",
        ),
        (
            "mean time error",
            f"{w.stats.mean_time_error_min:.0f} min",
            f"{g_report.mean_time_error_min:.0f} min",
        ),
    ]
    for label, wv, gv in rows:
        print(f"{label:>24} {str(wv):>12} {str(gv):>12}")

    assert g_report.mean_time_error_min < w.stats.mean_time_error_min
    print("\nGLOVE preserves truthfulness and wins on accuracy  [OK]")


if __name__ == "__main__":
    main()
