#!/usr/bin/env python3
"""Scenario: diagnose *why* a dataset resists anonymization.

Reproduces the paper's Section 5 analysis pipeline on a synthetic
nationwide dataset:

1. k-gap CDF — how far is each user from k-anonymity?
2. uniform-generalization sweep — why the legacy fix fails (Fig. 4);
3. stretch decomposition — the temporal long tail (Fig. 5a/5b);
4. the actionable conclusion: specialized generalization (GLOVE).

Run:  python examples/diagnose_anonymizability.py
"""

import numpy as np

from repro import GloveConfig, glove, kgap
from repro.analysis import (
    generalization_sweep,
    kgap_cdf,
    tail_weight_analysis,
    temporal_ratio_cdf,
)
from repro.baselines import PAPER_LEVELS
from repro.cdr import synthesize


def main() -> None:
    dataset = synthesize("synth-civ", n_users=120, days=3, seed=1)
    print(f"dataset: {dataset}\n")

    # 1. The k-gap CDF (Fig. 3a): nobody is anonymous, but the gap is
    #    small for most users.
    cdf, result = kgap_cdf(dataset, k=2)
    print("k-gap (k=2):")
    print(f"  2-anonymous users: {result.fraction_anonymous():.0%}")
    for q in (0.25, 0.5, 0.75, 0.95):
        print(f"  p{int(q * 100)}: {cdf.quantile(q):.3f}")

    # 2. Why not just coarsen everything?  (Fig. 4)
    print("\nuniform generalization sweep (fraction 2-anonymized):")
    sweep = generalization_sweep(dataset, PAPER_LEVELS, k=2)
    for level in PAPER_LEVELS:
        print(f"  {level.label:>8}: {float(sweep[level](0.0)):.0%}")
    print("  -> even 20 km / 8 h bins leave most users unique")

    # 3. The culprit: a long-tailed *temporal* stretch distribution.
    twi = tail_weight_analysis(dataset, k=2, result=result)
    ratio = temporal_ratio_cdf(dataset, k=2, result=result)
    print("\nstretch decomposition:")
    print(
        f"  median TWI: spatial {np.median(twi['spatial']):.2f}, "
        f"temporal {np.median(twi['temporal']):.2f} "
        "(>= 1.5 means exponential-or-heavier tail)"
    )
    print(
        f"  temporal stretch exceeds spatial for {1 - float(ratio(0.5)):.0%} "
        "of fingerprints"
    )
    print("  -> where users go is easy to hide; *when* they are active is not")

    # 4. The fix: per-sample specialized generalization.
    anonymized = glove(dataset, GloveConfig(k=2))
    print(
        f"\nGLOVE: 2-anonymized all {anonymized.dataset.n_users} users "
        f"({anonymized.stats.n_merges} merges)  [OK]"
    )


if __name__ == "__main__":
    main()
