#!/usr/bin/env python3
"""Run a miniature end-to-end reproduction of the whole paper.

Walks the paper's storyline in one sitting, at a scale that finishes in
about a minute:

  Section 1   — the uniqueness premise (attacks on raw data);
  Section 5   — anonymizability analysis (k-gap, generalization sweep,
                temporal long tail);
  Section 6/7 — GLOVE, its accuracy, suppression, and the W4M-LC
                comparison;
  Section 2.4 — downstream utility of the release.

For the full-scale reproduction with artifacts, use the CLI:
``glove-repro -n 150 -d 5 -o artifacts/``.

Run:  python examples/full_reproduction.py [n_users] [days]
"""

import sys

from repro.experiments import fig3, fig4, fig5, fig7, table2, uniqueness, utility_eval


def main(n_users: int = 80, days: int = 3, seed: int = 0) -> None:
    chapters = [
        ("Section 1: uniqueness premise", uniqueness),
        ("Section 5.1-5.2: anonymizability and the failure of "
         "uniform generalization", fig3),
        ("", fig4),
        ("Section 5.3: the temporal long tail", fig5),
        ("Section 7: GLOVE accuracy", fig7),
        ("Section 7.2: comparison against W4M-LC", table2),
        ("Section 2.4: downstream utility", utility_eval),
    ]
    for title, module in chapters:
        if title:
            print("#" * 72)
            print("#", title)
            print("#" * 72)
        report = module.run(n_users=n_users, days=days, seed=seed)
        print(report.render())


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 80
    d = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    main(n, d)
