#!/usr/bin/env python3
"""Scenario: an operator publishes a citywide CDR dataset.

The workflow a data-releasing operator would follow (the paper's
motivating use case: D4D-style data challenges):

1. extract the citywide subset (here: the ``dakar`` preset);
2. screen it (activity on >= 75% of days, as for d4d-sen);
3. k-anonymize with GLOVE, choosing k and suppression from a small
   sweep of the privacy/utility trade-off (paper Fig. 8/9);
4. validate against record-linkage attacks before release;
5. write the publishable CSV.

Run:  python examples/publish_city_dataset.py [out.csv]
"""

import sys

from repro import GloveConfig, SuppressionConfig, glove
from repro.analysis import extent_accuracy
from repro.attacks import uniqueness_given_random_points, uniqueness_given_top_locations
from repro.cdr import synthesize, write_fingerprints_csv


def main(out_path: str = "dakar_published.csv") -> None:
    # 1-2. Citywide dataset, already screened by the preset rules.
    original = synthesize("dakar", n_users=150, days=5, seed=7)
    print(f"screened dataset: {original}")

    # 3. Sweep k to pick the operating point (the paper recommends
    #    k <= 5 for exploitable output).
    print("\nprivacy/utility sweep:")
    chosen = None
    for k in (2, 3, 5):
        result = glove(
            original,
            GloveConfig(
                k=k,
                suppression=SuppressionConfig(
                    spatial_threshold_m=15_000.0, temporal_threshold_min=360.0
                ),
            ),
        )
        spatial, temporal = extent_accuracy(result.dataset)
        keep = float(spatial(2_000.0))
        print(
            f"  k={k}: {len(result.dataset)} groups, "
            f"{keep:.0%} of samples within 2 km, "
            f"median time extent {temporal.median:.0f} min"
        )
        if k == 2:
            chosen = result

    # 4. Attack validation on the k=2 release candidate.
    print("\nattack validation (k=2 candidate):")
    top = uniqueness_given_top_locations(original, chosen.dataset, n_locations=3)
    rnd = uniqueness_given_random_points(original, chosen.dataset, n_points=5, seed=1)
    print(f"  top-3-locations attack: {top.fraction_identified_within(2):.0%} identified")
    print(f"  5-random-points attack: {rnd.fraction_identified_within(2):.0%} identified")
    assert top.fraction_identified_within(2) == 0.0
    assert rnd.fraction_identified_within(2) == 0.0

    # 5. Publish.
    rows = write_fingerprints_csv(chosen.dataset, out_path)
    print(f"\npublished {rows} sample rows to {out_path}  [OK]")


if __name__ == "__main__":
    main(*sys.argv[1:2])
