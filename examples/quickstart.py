#!/usr/bin/env python3
"""Quickstart: k-anonymize a mobile traffic dataset with GLOVE.

This walks the paper's core loop end to end:

1. obtain movement micro-data (here: a synthetic CDR dataset standing
   in for the restricted D4D data);
2. measure its anonymizability (the k-gap of Section 4-5);
3. k-anonymize it with GLOVE (Section 6);
4. check the privacy guarantee and the residual accuracy (Section 7).

Run:  python examples/quickstart.py
"""

from repro import GloveConfig, SuppressionConfig, glove, kgap
from repro.analysis import extent_accuracy
from repro.cdr import synthesize


def main() -> None:
    # 1. Movement micro-data: 120 subscribers, 3 days, 100 m / 1 min
    #    granularity — the format of Table 1 in the paper.
    dataset = synthesize("synth-civ", n_users=120, days=3, seed=42)
    print(f"dataset: {dataset}")
    first = dataset[0]
    print(f"example fingerprint {first.uid}: {first.m} samples, e.g. {first[0]}")

    # 2. Anonymizability: no one is 2-anonymous, but the k-gap is small.
    result = kgap(dataset, k=2)
    print(
        f"\n2-gap: min={result.gaps.min():.3f} "
        f"median={result.quantile(0.5):.3f} max={result.gaps.max():.3f}"
    )
    print(f"users already 2-anonymous: {result.fraction_anonymous():.0%}")

    # 3. GLOVE with the paper's Table 2 suppression thresholds.
    config = GloveConfig(
        k=2,
        suppression=SuppressionConfig(
            spatial_threshold_m=15_000.0, temporal_threshold_min=360.0
        ),
    )
    anonymized = glove(dataset, config)
    print(
        f"\nGLOVE: {anonymized.stats.n_merges} merges -> "
        f"{len(anonymized.dataset)} published fingerprints "
        f"hiding {anonymized.dataset.n_users} subscribers"
    )

    # 4. Privacy and utility.
    assert anonymized.dataset.is_k_anonymous(2)
    print("privacy: every subscriber is hidden in a crowd of >= 2  [OK]")
    spatial, temporal = extent_accuracy(anonymized.dataset)
    print(
        f"utility: {float(spatial(200.0)):.0%} of samples keep the original "
        f"spatial accuracy; median extent "
        f"{spatial.median / 1000:.2f} km / {temporal.median:.0f} min"
    )


if __name__ == "__main__":
    main()
